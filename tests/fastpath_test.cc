// Tests for the devirtualized access path introduced by the hot-path
// overhaul: resolved mapping contexts, SoA line storage, specialized
// replacement kernels, the RM Benes-memo diagnostics, RPCache in-place
// reseeding, and the batched Machine::run entry point.
//
// The placement-equivalence tests pin the resolved-context math against
// independent re-implementations of the ORIGINAL seed formulas (written out
// here, not shared with the library), so a silent algebraic drift in the
// optimized helpers cannot pass.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/benes.h"
#include "cache/builder.h"
#include "cache/mapper.h"
#include "cache/placement.h"
#include "common/bitops.h"
#include "rng/rng.h"
#include "sim/machine.h"

namespace tsc::cache {
namespace {

constexpr ProcId kP1{1};
constexpr ProcId kP2{2};

std::shared_ptr<rng::Rng> test_rng(std::uint64_t seed = 42) {
  return std::make_shared<rng::XorShift64Star>(seed);
}

// --- independent references (the seed implementation's math, restated) ----

constexpr std::uint64_t ref_mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint32_t ref_xor_index(const Geometry& g, Addr line, Seed seed) {
  const std::uint32_t idx = g.index_of_line(line);
  const auto mask =
      static_cast<std::uint32_t>(ref_mix64(seed.value) & (g.sets() - 1));
  return idx ^ mask;
}

std::uint32_t ref_hashrp(const Geometry& g, unsigned line_addr_bits,
                         Addr line, Seed seed) {
  const unsigned w = g.index_bits() == 0 ? 1 : g.index_bits();
  const std::uint64_t s = ref_mix64(seed.value);
  const std::uint64_t la = line & low_mask(line_addr_bits);
  const unsigned field_count = (line_addr_bits + w - 1) / w;
  const unsigned lane = w + 1;
  std::uint64_t acc = bits(s, 48, w);
  for (unsigned i = 0; i < field_count; ++i) {
    const unsigned lo = i * w;
    const unsigned width =
        lane < line_addr_bits - lo ? lane : line_addr_bits - lo;
    const std::uint64_t field = bits(la, lo, width) ^ bits(s, (7 * i) % 40, lane);
    const unsigned neighbour_lo = ((i + 1) % field_count) * w;
    const auto amt = static_cast<unsigned>(
        (bits(s, w + 4 * i, 4) ^ bits(la, neighbour_lo, 4)) & 0xF);
    acc ^= rotl_field(field, lane, amt) & low_mask(w);
  }
  return static_cast<std::uint32_t>(acc & (g.sets() - 1));
}

std::uint32_t ref_random_modulo(const Geometry& g, Addr line, Seed seed) {
  const unsigned k = g.index_bits();
  if (k == 0) return 0;
  const std::uint32_t idx = g.index_of_line(line);
  const Addr tag = g.tag_of_line(line);
  const std::uint64_t s = ref_mix64(seed.value);
  const auto xored_idx =
      static_cast<std::uint32_t>((idx ^ s) & (g.sets() - 1));
  const std::uint64_t driver = tag ^ (s >> k);
  const std::vector<std::uint32_t> perm = benes_permutation(k, driver);
  std::uint32_t out = 0;
  for (unsigned i = 0; i < k; ++i) {
    out |= ((xored_idx >> perm[i]) & 1u) << i;
  }
  return out;
}

// --- placement equivalence ------------------------------------------------

TEST(FastPathEquivalence, XorIndexMatchesReference) {
  const Geometry g = l1_geometry_arm920t();
  const auto p = make_placement(PlacementKind::kXorIndex, g);
  rng::SplitMix64 r(7);
  for (int i = 0; i < 5000; ++i) {
    const Addr line = r.next_u64() >> 37;
    const Seed seed{r.next_u64()};
    EXPECT_EQ(p->set_index(line, seed), ref_xor_index(g, line, seed));
  }
}

TEST(FastPathEquivalence, HashRpMatchesReference) {
  for (const Geometry& g :
       {l1_geometry_arm920t(), l2_geometry_arm920t(), Geometry(4096, 2, 16)}) {
    const HashRpPlacement p(g);
    const unsigned line_addr_bits = 32 - g.offset_bits();
    rng::SplitMix64 r(11);
    for (int i = 0; i < 3000; ++i) {
      const Addr line = r.next_u64() & low_mask(line_addr_bits);
      const Seed seed{r.next_u64()};
      ASSERT_EQ(p.set_index(line, seed),
                ref_hashrp(g, line_addr_bits, line, seed))
          << "line " << line << " seed " << seed.value;
    }
  }
}

TEST(FastPathEquivalence, RandomModuloMatchesReference) {
  // Covers both memo layouts: the per-driver LUT (k <= 8, the L1 shape) and
  // the source-index permute (k > 8, the L2 shape).
  for (const Geometry& g : {l1_geometry_arm920t(), l2_geometry_arm920t()}) {
    const RandomModuloPlacement p(g);
    rng::SplitMix64 r(13);
    for (int i = 0; i < 3000; ++i) {
      const Addr line = r.next_u64() >> 37;
      const Seed seed{r.next_u64() & 0xFFFF};  // repeat seeds: exercise memo
      ASSERT_EQ(p.set_index(line, seed), ref_random_modulo(g, line, seed))
          << "line " << line << " seed " << seed.value;
    }
  }
}

TEST(FastPathEquivalence, CacheAccessSetMatchesMapperMap) {
  // The specialized access path and the virtual mapper must consult the
  // same set for every design.
  for (const MapperKind mk :
       {MapperKind::kModulo, MapperKind::kXorIndex, MapperKind::kHashRp,
        MapperKind::kRandomModulo, MapperKind::kRpCache}) {
    CacheSpec spec;
    spec.config.geometry = l1_geometry_arm920t();
    spec.mapper = mk;
    spec.replacement = ReplacementKind::kLru;
    auto c = build_cache(spec, test_rng());
    c->set_seed(kP1, Seed{0xABCDEF});
    rng::SplitMix64 r(17);
    for (int i = 0; i < 2000; ++i) {
      const Addr addr = r.next_u64() >> 30;
      const Addr line = spec.config.geometry.line_addr(addr);
      ASSERT_EQ(c->access(kP1, addr, false).set, c->mapper().map(line, kP1))
          << to_string(mk);
    }
  }
}

// --- RM Benes-memo diagnostics (satellite) --------------------------------

TEST(RmMemoStats, CountsHitsAndMisses) {
  const Geometry g = l1_geometry_arm920t();
  const RandomModuloPlacement p(g);
  const Seed seed{99};
  // Same line, same seed: one driver -> first access builds the slot, the
  // rest reuse it.
  for (int i = 0; i < 10; ++i) (void)p.set_index(0x12345, seed);
  EXPECT_EQ(p.memo_stats().misses, 1u);
  EXPECT_EQ(p.memo_stats().hits, 9u);
  EXPECT_NEAR(p.memo_stats().hit_rate(), 0.9, 1e-12);

  p.reset_memo_stats();
  EXPECT_EQ(p.memo_stats().hits, 0u);
  EXPECT_EQ(p.memo_stats().misses, 0u);
  EXPECT_EQ(p.memo_stats().hit_rate(), 0.0);

  // Distinct tags under one seed: distinct drivers, each a fresh slot.
  for (Addr t = 0; t < 32; ++t) {
    (void)p.set_index((t << g.index_bits()) | 5, seed);
  }
  EXPECT_EQ(p.memo_stats().misses, 32u);
}

TEST(RmMemoStats, ExposedThroughCacheDiagnostics) {
  CacheSpec spec;
  spec.config.geometry = l1_geometry_arm920t();
  spec.mapper = MapperKind::kRandomModulo;
  spec.replacement = ReplacementKind::kRandom;
  auto c = build_cache(spec, test_rng());
  for (int i = 0; i < 100; ++i) (void)c->access(kP1, 0x4000, false);
  const auto stats = c->rm_memo_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->hits + stats->misses, 100u);
  EXPECT_GE(stats->hits, 99u) << "one line -> one driver -> one rebuild";

  // Non-RM designs expose nothing.
  CacheSpec mod = spec;
  mod.mapper = MapperKind::kModulo;
  mod.replacement = ReplacementKind::kLru;
  EXPECT_FALSE(build_cache(mod)->rm_memo_stats().has_value());
}

// --- RPCache in-place reseeding (satellite) -------------------------------

TEST(RpCacheReseed, RegeneratesTablesWithoutReallocation) {
  const Geometry g = l2_geometry_arm920t();
  RpCacheMapper mapper(g);
  mapper.set_seed(kP1, Seed{1});
  const std::uint64_t after_first = mapper.table_allocations();
  // A hyperperiod's worth of reseeds must not allocate again.
  for (std::uint64_t epoch = 2; epoch < 66; ++epoch) {
    mapper.set_seed(kP1, Seed{epoch});
    EXPECT_EQ(mapper.table_allocations(), after_first)
        << "reseed " << epoch << " reallocated the permutation table";
  }
  // And the in-place regeneration must equal a from-scratch build.
  RpCacheMapper fresh(g);
  fresh.set_seed(kP1, Seed{65});
  for (Addr line = 0; line < 4096; ++line) {
    ASSERT_EQ(mapper.map(line, kP1), fresh.map(line, kP1));
  }
}

TEST(RpCacheReseed, UnseededProcessUsesDefaultSeedTable) {
  const Geometry g = l1_geometry_arm920t();
  RpCacheMapper mapper(g, Seed{0xDEFA});
  RpCacheMapper explicitly(g);
  explicitly.set_seed(kP2, Seed{0xDEFA});
  for (Addr line = 0; line < 512; ++line) {
    ASSERT_EQ(mapper.map(line, kP1), explicitly.map(line, kP2));
  }
}

// --- way partitioning x secure contention (satellite) ---------------------

CacheSpec rpcache_spec(const Geometry& g) {
  CacheSpec spec;
  spec.config.geometry = g;
  spec.mapper = MapperKind::kRpCache;
  spec.replacement = ReplacementKind::kLru;
  return spec;
}

/// Address of a line that RPCache maps to `target_set` for `proc`.
Addr addr_in_set(const Cache& c, ProcId proc, std::uint32_t target_set,
                 unsigned nth) {
  unsigned seen = 0;
  for (Addr line = 0;; ++line) {
    if (c.mapper().map(line, proc) == target_set) {
      if (seen == nth) return line * c.geometry().line_bytes();
      ++seen;
    }
  }
}

TEST(PartitionSecureContention, ForeignVictimInPartitionTriggersRule) {
  // 4-way geometry: this exercises the specialized (WAYS == 4) fast path.
  auto c = build_cache(rpcache_spec(Geometry(2048, 4, 32)), test_rng(3));
  c->set_seed(kP1, Seed{11});
  c->set_seed(kP2, Seed{22});
  // Both processes install only into ways {0, 1}.
  c->set_way_partition(kP1, 0, 2);
  c->set_way_partition(kP2, 0, 2);

  // P1 fills ways 0 and 1 of set 3 (as mapped for P2's addresses, so the
  // conflict is guaranteed regardless of the two permutation tables).
  const std::uint32_t set = 3;
  (void)c->access(kP1, addr_in_set(*c, kP1, set, 0), false);
  (void)c->access(kP1, addr_in_set(*c, kP1, set, 1), false);
  ASSERT_EQ(c->stats().contention_evictions, 0u);

  // P2 misses into the same set: the round-robin victim inside the shared
  // partition belongs to P1, so the RPCache rule must fire - no allocation,
  // one contention eviction.
  const Addr p2_addr = addr_in_set(*c, kP2, set, 0);
  const AccessResult r = c->access(kP2, p2_addr, false);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.allocated);
  EXPECT_EQ(c->stats().contention_evictions, 1u);
  EXPECT_FALSE(c->contains(kP2, p2_addr))
      << "secure rule must not install the requesting line";
}

TEST(PartitionSecureContention, OwnVictimInPartitionEvictsNormally) {
  auto c = build_cache(rpcache_spec(Geometry(2048, 4, 32)), test_rng(4));
  c->set_seed(kP1, Seed{11});
  c->set_way_partition(kP1, 2, 2);

  const std::uint32_t set = 5;
  const Addr a = addr_in_set(*c, kP1, set, 0);
  const Addr b = addr_in_set(*c, kP1, set, 1);
  const Addr d = addr_in_set(*c, kP1, set, 2);
  (void)c->access(kP1, a, false);
  (void)c->access(kP1, b, false);
  const AccessResult r = c->access(kP1, d, false);  // partition full
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.allocated) << "own-line eviction must not trigger the rule";
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(c->stats().contention_evictions, 0u);
  EXPECT_TRUE(c->contains(kP1, d));
}

TEST(PartitionSecureContention, GenericWayCountPathBehavesIdentically) {
  // 8-way geometry takes the generic (WAYS == 0) specialization; the rule
  // must behave exactly as on the 4-way fast path.
  auto c = build_cache(rpcache_spec(Geometry(4096, 8, 32)), test_rng(5));
  c->set_seed(kP1, Seed{11});
  c->set_seed(kP2, Seed{22});
  c->set_way_partition(kP1, 0, 3);
  c->set_way_partition(kP2, 0, 3);

  const std::uint32_t set = 7;
  for (unsigned n = 0; n < 3; ++n) {
    (void)c->access(kP1, addr_in_set(*c, kP1, set, n), false);
  }
  const AccessResult r = c->access(kP2, addr_in_set(*c, kP2, set, 0), false);
  EXPECT_FALSE(r.allocated);
  EXPECT_EQ(c->stats().contention_evictions, 1u);
}

// --- batched replay (tentpole: Machine::run) ------------------------------

TEST(BatchedReplay, RunMatchesFineGrainedCalls) {
  const auto config = sim::arm920t_config(MapperKind::kRandomModulo,
                                          MapperKind::kHashRp,
                                          ReplacementKind::kRandom);
  sim::Machine fine(config, test_rng(9));
  sim::Machine batched(config, test_rng(9));
  fine.hierarchy().set_seed(kP1, Seed{123});
  batched.hierarchy().set_seed(kP1, Seed{123});
  fine.set_process(kP1);
  batched.set_process(kP1);

  std::vector<sim::AccessRecord> batch;
  rng::SplitMix64 r(21);
  for (int i = 0; i < 4000; ++i) {
    const Addr pc = 0x1000 + (r.next_u64() & 0xFFF0);
    const Addr ea = 0x80000 + (r.next_u64() & 0x3FFF0);
    switch (i % 4) {
      case 0:
        fine.instr(pc);
        batch.push_back(sim::AccessRecord::make_instr(pc));
        break;
      case 1:
        fine.load(pc, ea);
        batch.push_back(sim::AccessRecord::make_load(pc, ea));
        break;
      case 2:
        fine.store(pc, ea);
        batch.push_back(sim::AccessRecord::make_store(pc, ea));
        break;
      default:
        fine.branch(pc, (i & 8) != 0);
        batch.push_back(sim::AccessRecord::make_branch(pc, (i & 8) != 0));
        break;
    }
  }
  batched.run(batch);

  EXPECT_EQ(batched.now(), fine.now());
  EXPECT_EQ(batched.stats().instructions, fine.stats().instructions);
  EXPECT_EQ(batched.stats().loads, fine.stats().loads);
  EXPECT_EQ(batched.stats().stores, fine.stats().stores);
  EXPECT_EQ(batched.stats().taken_branches, fine.stats().taken_branches);
  EXPECT_EQ(batched.hierarchy().l1d().stats().hits,
            fine.hierarchy().l1d().stats().hits);
  EXPECT_EQ(batched.hierarchy().l1i().stats().misses,
            fine.hierarchy().l1i().stats().misses);
  EXPECT_EQ(batched.hierarchy().l2().stats().accesses,
            fine.hierarchy().l2().stats().accesses);
}

}  // namespace
}  // namespace tsc::cache
