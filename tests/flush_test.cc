// Flush-semantics regressions: the per-line flush primitive (Cache /
// Hierarchy / Machine) and the whole-cache flush cost model.
//
// The pinned numbers here ARE the Flush+Flush timing channel: a flush of
// an absent line must cost exactly the base issue cost, a present line
// exactly flush_hit more per level that held it, a dirty copy exactly
// flush_writeback on top.  And the whole-cache flush of an EMPTY hierarchy
// must still cost the base issue cost - the historical bug was charging
// lines * flush_per_line only, making an empty flush free and the
// hit-flush/miss-flush costs indistinguishable at zero lines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/builder.h"
#include "cache/cache.h"
#include "rng/rng.h"
#include "sim/machine.h"

namespace tsc::sim {
namespace {

constexpr ProcId kP1{1};
constexpr Addr kCode = 0x1000;
constexpr Addr kData = 0x0040'0000;

/// Deterministic modulo/LRU machine: flush latencies depend only on line
/// state, never on rng draws.
Machine modulo_machine() {
  Machine machine(arm920t_config(cache::MapperKind::kModulo,
                                 cache::MapperKind::kModulo,
                                 cache::ReplacementKind::kLru),
                  std::make_shared<rng::XorShift64Star>(1));
  machine.set_process(kP1);
  return machine;
}

TEST(FlushLine, AbsentPresentAndDirtyCostsArePinnedAndDistinct) {
  Machine m = modulo_machine();
  const LatencyConfig& lat = m.latency();

  // Absent line: base cost only - every level probes, none holds it.
  Hierarchy::FlushResult r = m.hierarchy().flush_line(kP1, kData);
  EXPECT_FALSE(r.present);
  EXPECT_FALSE(r.writeback);
  EXPECT_EQ(r.latency, lat.flush_base);

  // Clean present: a load installs the line in L1D and L2, so the flush
  // pays the hit surcharge exactly twice.
  m.load(kCode, kData);
  r = m.hierarchy().flush_line(kP1, kData);
  EXPECT_TRUE(r.present);
  EXPECT_FALSE(r.writeback);
  EXPECT_EQ(r.latency, lat.flush_base + 2 * lat.flush_hit);

  // Dirty present: reload, then a store HIT dirties the L1D copy only
  // (the write stops at L1D; the L2 copy stays clean), so exactly one
  // writeback charge joins the two hits.
  m.load(kCode, kData);
  m.store(kCode, kData);
  r = m.hierarchy().flush_line(kP1, kData);
  EXPECT_TRUE(r.present);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.latency,
            lat.flush_base + 2 * lat.flush_hit + lat.flush_writeback);

  // A store MISS instead write-allocates through both levels and dirties
  // both copies: two writeback charges.
  m.store(kCode, kData);  // miss - the flush above emptied both levels
  r = m.hierarchy().flush_line(kP1, kData);
  EXPECT_TRUE(r.present);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.latency,
            lat.flush_base + 2 * lat.flush_hit + 2 * lat.flush_writeback);

  // The three costs are pairwise distinct - that distinctness IS the
  // Flush+Flush observable.
  EXPECT_NE(lat.flush_base, lat.flush_base + 2 * lat.flush_hit);
  EXPECT_NE(lat.flush_base + 2 * lat.flush_hit,
            lat.flush_base + 2 * lat.flush_hit + lat.flush_writeback);

  // And the flush really evicted: the next flush is an absent-flush again.
  r = m.hierarchy().flush_line(kP1, kData);
  EXPECT_FALSE(r.present);
  EXPECT_EQ(r.latency, lat.flush_base);
}

TEST(FlushLine, MachineChargesFetchPlusFlushLatency) {
  Machine m = modulo_machine();
  m.instr(kCode);  // warm the code line
  const Cycles t0 = m.now();
  m.flush_line(kCode, kData);  // absent line, hot code
  EXPECT_EQ(m.now() - t0, 1 + m.latency().flush_base);
  EXPECT_EQ(m.stats().line_flushes, 1u);

  m.load(kCode, kData);
  const Cycles t1 = m.now();
  m.flush_line(kCode, kData);
  EXPECT_EQ(m.now() - t1,
            1 + m.latency().flush_base + 2 * m.latency().flush_hit);
}

TEST(FlushCaches, EmptyFlushHasNonzeroBaseCostDistinctFromPopulated) {
  Machine empty = modulo_machine();
  const Cycles t0 = empty.now();
  empty.flush_caches();
  const Cycles empty_cost = empty.now() - t0;
  // Regression: flushing an empty hierarchy used to cost 0 cycles (only
  // lines * flush_per_line was charged).  The flush instruction still
  // issues and every level's tag array is still swept.
  EXPECT_EQ(empty_cost, empty.latency().flush_base);
  EXPECT_GT(empty_cost, 0u);

  Machine warm = modulo_machine();
  warm.load(kCode, kData);  // 1 code line + 1 data line, in L1 and L2 each
  const Cycles t1 = warm.now();
  warm.flush_caches();
  const Cycles warm_cost = warm.now() - t1;
  EXPECT_EQ(warm_cost,
            warm.latency().flush_base + 4 * warm.latency().flush_per_line);
  EXPECT_GT(warm_cost, empty_cost);
}

TEST(FlushLine, InstrBlockRepeatHitPathStaysExactAcrossFlushInvalidation) {
  // A flush that invalidates the resident code line between two
  // instr_block calls: the block's repeat-hit fast path (L1I
  // try_repeat_hit) must not shield the refetch.  Replay the same
  // sequence via instr_block and via per-instruction calls on identically
  // seeded twins; cycles and stats must agree exactly.
  Machine batched = modulo_machine();
  Machine stepped = modulo_machine();

  const auto drive = [](Machine& m, bool block) {
    const auto instrs = [&](Addr pc, unsigned n) {
      if (block) {
        m.instr_block(pc, n);
      } else {
        for (unsigned i = 0; i < n; ++i) m.instr(pc + 4 * i);
      }
    };
    instrs(kCode, 8);                 // one 32B code line, warmed
    m.flush_line(kCode + 32, kCode);  // invalidate that code line
    instrs(kCode, 8);                 // must re-miss, then re-hit
    m.flush_line(kCode + 32, kData);  // absent-line flush for contrast
  };
  drive(batched, /*block=*/true);
  drive(stepped, /*block=*/false);

  EXPECT_EQ(batched.now(), stepped.now());
  EXPECT_EQ(batched.stats().instructions, stepped.stats().instructions);
  EXPECT_EQ(batched.stats().line_flushes, stepped.stats().line_flushes);
  EXPECT_EQ(batched.hierarchy().l1i().stats().hits,
            stepped.hierarchy().l1i().stats().hits);
  EXPECT_EQ(batched.hierarchy().l1i().stats().misses,
            stepped.hierarchy().l1i().stats().misses);

  // And the refetch after the code-line flush really missed: first fetch
  // of the block line (1), the flush instruction's own line at
  // kCode + 32 (2), the post-flush refetch of the block line (3).
  EXPECT_EQ(batched.hierarchy().l1i().stats().misses, 3u);
}

TEST(CacheFlushLine, CountersAndReplacementMetadataSemantics) {
  cache::CacheSpec spec;
  spec.config.geometry = cache::Geometry(128, 2, 16);  // 4 sets, 2 ways
  spec.mapper = cache::MapperKind::kModulo;
  spec.replacement = cache::ReplacementKind::kLru;
  spec.config.write_back = true;
  auto c = cache::build_cache(spec);

  // Absent flush: counted, no hit, nothing else moves.
  cache::Cache::FlushLineResult r = c->flush_line(kP1, 0x100);
  EXPECT_FALSE(r.present);
  EXPECT_EQ(c->stats().line_flushes, 1u);
  EXPECT_EQ(c->stats().line_flush_hits, 0u);
  EXPECT_EQ(c->stats().flushed_lines, 0u);

  // Present flush: hit + flushed-line accounting, and a dirty copy writes
  // back.  The flush is NOT an access: accesses/misses stay untouched.
  (void)c->access(kP1, 0x100, true);  // write-allocate, dirty
  const std::uint64_t accesses_before = c->stats().accesses;
  r = c->flush_line(kP1, 0x100);
  EXPECT_TRUE(r.present);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.set, 0u);
  EXPECT_EQ(c->stats().line_flushes, 2u);
  EXPECT_EQ(c->stats().line_flush_hits, 1u);
  EXPECT_EQ(c->stats().flushed_lines, 1u);
  EXPECT_EQ(c->stats().writebacks, 1u);
  EXPECT_EQ(c->stats().accesses, accesses_before);
  EXPECT_FALSE(c->access(kP1, 0x100, false).hit) << "line must be gone";

  // Replacement metadata is untouched by design: lines fill invalid ways
  // first, so a flushed way is simply the next fill target and the stale
  // LRU stamp self-heals.  Fill the set, flush one way, and the next miss
  // must take the flushed way rather than evicting the survivor.
  auto c2 = cache::build_cache(spec);
  const Addr a = 0x000;  // set 0, tag 0
  const Addr b = 0x040;  // set 0, tag 1
  const Addr d = 0x080;  // set 0, tag 2
  (void)c2->access(kP1, a, false);
  (void)c2->access(kP1, b, false);
  (void)c2->flush_line(kP1, a);
  const cache::AccessResult fill = c2->access(kP1, d, false);
  EXPECT_FALSE(fill.hit);
  EXPECT_FALSE(fill.evicted) << "must reuse the flushed way, not evict";
  EXPECT_TRUE(c2->access(kP1, b, false).hit) << "survivor must survive";
}

}  // namespace
}  // namespace tsc::sim
