// Tests for the EVT goodness-of-fit diagnostics (stats/gof.h): the CvM
// score must accept the true model and reject a wrong family, the Q-Q
// metrics must track quantile agreement, and degenerate fits must come back
// undefined rather than numerically garbled.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.h"
#include "stats/evt.h"
#include "stats/gof.h"

namespace tsc::stats {
namespace {

std::vector<double> gumbel_sample(double mu, double beta, int n,
                                  std::uint64_t seed) {
  rng::Pcg32 g(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double u = g.next_double();
    xs.push_back(mu - beta * std::log(-std::log(u + 1e-15)));
  }
  return xs;
}

std::vector<double> exp_sample(double scale, int n, std::uint64_t seed) {
  rng::Pcg32 g(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    xs.push_back(-scale * std::log(1.0 - g.next_double()));
  }
  return xs;
}

TEST(GofGumbel, AcceptsTrueModel) {
  const auto xs = gumbel_sample(100.0, 5.0, 500, 41);
  const GumbelFit f = fit_gumbel(xs);
  const GofResult g = gof_gumbel(xs, f);
  ASSERT_TRUE(g.defined);
  EXPECT_EQ(g.n, 500u);
  EXPECT_TRUE(g.acceptable(0.05)) << "CvM p=" << g.cvm_p_value;
  EXPECT_GT(g.qq_r2, 0.99);
  EXPECT_LT(g.qq_tail_rel_err, 0.1);
}

TEST(GofGumbel, RejectsWrongFamily) {
  // Uniform data forced through a moment-matched Gumbel: the EDF shapes
  // differ grossly and the diagnostic must say so.
  rng::Pcg32 g(42);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(g.next_double());
  const GumbelFit f = fit_gumbel(xs);
  const GofResult r = gof_gumbel(xs, f);
  ASSERT_TRUE(r.defined);
  EXPECT_FALSE(r.acceptable(0.05)) << "CvM p=" << r.cvm_p_value;
}

TEST(GofGumbel, DegenerateFitIsUndefined) {
  const std::vector<double> maxima(32, 7.0);
  const GumbelFit f = fit_gumbel(maxima);
  ASSERT_TRUE(f.degenerate());
  const GofResult g = gof_gumbel(maxima, f);
  EXPECT_FALSE(g.defined);
  EXPECT_FALSE(g.acceptable());
}

TEST(GofGumbel, TooFewPointsIsUndefined) {
  const auto xs = gumbel_sample(10.0, 1.0, 7, 43);
  const GumbelFit f{.mu = 10.0, .beta = 1.0};
  EXPECT_FALSE(gof_gumbel(xs, f).defined);
}

TEST(GofGpd, AcceptsExponentialTail) {
  const auto xs = exp_sample(10.0, 2000, 44);
  const GpdFit f = fit_gpd_pot(xs, 0.85);
  const GofResult g = gof_gpd(xs, f);
  ASSERT_TRUE(g.defined);
  EXPECT_NEAR(static_cast<double>(g.n), 300.0, 2.0);  // ~15% of 2000 excesses
  EXPECT_TRUE(g.acceptable(0.05)) << "CvM p=" << g.cvm_p_value;
  EXPECT_GT(g.qq_r2, 0.95);
}

TEST(GofGpd, RejectsGrossMismatch) {
  // Excesses of a uniform sample against a deliberately wrong heavy-tailed
  // GPD: reject.
  rng::Pcg32 g(45);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(g.next_double());
  GpdFit f = fit_gpd_pot(xs, 0.5);
  f.shape = 0.25;             // force a fat tail the data does not have
  f.scale = f.scale * 4.0;
  const GofResult r = gof_gpd(xs, f);
  ASSERT_TRUE(r.defined);
  EXPECT_FALSE(r.acceptable(0.05)) << "CvM p=" << r.cvm_p_value;
}

TEST(GofGpd, CollapsedTailIsUndefined) {
  // The fit_gpd_pot degenerate arm (scale 1e-9) has no testable CDF.
  const GpdFit f{.threshold = 100.0, .scale = 1e-9, .shape = 0.0,
                 .zeta = 0.0};
  const std::vector<double> xs(200, 100.0);
  EXPECT_FALSE(gof_gpd(xs, f).defined);
}

TEST(GofDispatch, MatchesUnderlyingDiagnostics) {
  const auto xs = gumbel_sample(1000.0, 20.0, 1000, 46);
  const PwcetModel gumbel_model(xs, TailModel::kGumbelBlockMaxima, 10);
  const GofResult via_model = gof_pwcet_fit(xs, gumbel_model);
  const GofResult direct =
      gof_gumbel(block_maxima(xs, 10), gumbel_model.gumbel());
  ASSERT_TRUE(via_model.defined);
  EXPECT_DOUBLE_EQ(via_model.cvm_statistic, direct.cvm_statistic);
  EXPECT_DOUBLE_EQ(via_model.qq_r2, direct.qq_r2);

  const PwcetModel gpd_model(xs, TailModel::kGpdPot);
  const GofResult via_gpd = gof_pwcet_fit(xs, gpd_model);
  const GofResult direct_gpd = gof_gpd(xs, gpd_model.gpd());
  ASSERT_TRUE(via_gpd.defined);
  EXPECT_DOUBLE_EQ(via_gpd.cvm_statistic, direct_gpd.cvm_statistic);
}

TEST(GofCvm, PValueDecreasesWithStatistic) {
  // The piecewise approximation must at least be monotone in the adjusted
  // statistic across its branch boundaries.
  const auto xs = gumbel_sample(0.0, 1.0, 200, 47);
  const GumbelFit good = fit_gumbel(xs);
  GumbelFit worse = good;
  double prev_p = 1.1;
  for (double shift = 0.0; shift < 2.0; shift += 0.25) {
    worse.mu = good.mu + shift;  // progressively worse location
    const GofResult r = gof_gumbel(xs, worse);
    ASSERT_TRUE(r.defined);
    EXPECT_LE(r.cvm_p_value, prev_p + 1e-12) << "shift=" << shift;
    prev_p = r.cvm_p_value;
  }
}

}  // namespace
}  // namespace tsc::stats
