// Golden bit-identity tests.
//
// tests/golden/fig5_s3000_ss1000.json is the fig5 campaign JSON produced by
// the PRE-refactor implementation (virtual mapper dispatch, hash-map seeds,
// AoS line array) at samples=3000, shard_size=1000.  The optimized hierarchy
// must reproduce it byte for byte, for any worker count: placement results,
// replacement decisions, RNG draw order, timing accounting and JSON
// serialization all have to be exactly preserved.
//
// tests/golden/attack_matrix_s1200_ss400.json pins the attack-matrix
// experiment the same way: the (cell, shard) decomposition, the exact
// integer profile merges and the scoring must yield byte-identical JSON for
// every --shards worker count, and the fixture's headline ordering (modulo
// strictly the most leaky under Prime+Probe) is part of the contract.
//
// tests/golden/pwcet_matrix_s240_ss80.json pins the time-predictability
// dual: the sharded MBPTA sample collection, the i.i.d./fit/convergence
// verdicts and the tradeoff table must be byte-identical for every worker
// count, and the fixture must embed the paper's qualitative claim - the
// deterministic platform never MBPTA-applicable, the randomized platforms
// passing with converged pWCET curves.
//
// If an intentional semantic change ever invalidates a fixture, regenerate
// it with:
//   tsc_run --experiment fig5 --samples 3000 --shard-size 1000 --json
//       > tests/golden/fig5_s3000_ss1000.json
//   tsc_run --experiment attack_matrix --samples 1200 --shard-size 400 --json
//       > tests/golden/attack_matrix_s1200_ss400.json
//   tsc_run --experiment pwcet_matrix --samples 240 --shard-size 80 --json
//       > tests/golden/pwcet_matrix_s240_ss80.json
//   tsc_run --experiment flush_matrix --samples 600 --shard-size 200 --json
//       > tests/golden/flush_matrix_s600_ss200.json
//   tsc_run --experiment ct_audit --samples 1 --shard-size 1 --json
//       > tests/golden/ct_audit.json
// (each command on one line) and say so loudly in the commit message - this
// file is the contract that performance work does not move simulation
// results.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runner/experiment.h"

namespace tsc::runner {
namespace {

#ifndef TSC_SOURCE_DIR
#error "TSC_SOURCE_DIR must point at the repository root"
#endif

std::string read_fixture(const std::string& relative) {
  const std::string path = std::string(TSC_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Render an experiment exactly as `tsc_run --json` does (compact dump plus
/// trailing newline), so the fixture can be regenerated with the CLI.
std::string run_experiment_json(const std::string& name, std::size_t samples,
                                std::size_t shard_size, unsigned workers) {
  const Experiment* experiment = find_experiment(name);
  EXPECT_NE(experiment, nullptr);
  RunOptions options;
  options.samples = samples;
  options.shard_size = shard_size;
  options.workers = workers;
  Json doc = Json::object();
  doc.set("experiment", experiment->name)
      .set("description", experiment->description)
      .set("seed", options.master_seed)
      .set("results", experiment->run(options));
  return doc.dump(-1) + "\n";
}

std::string run_fig5_json(unsigned workers) {
  return run_experiment_json("fig5", 3000, 1000, workers);
}

std::string run_attack_matrix_json(unsigned workers) {
  return run_experiment_json("attack_matrix", 1200, 400, workers);
}

TEST(GoldenFig5, MatchesPreRefactorOutputByteForByte) {
  const std::string expected = read_fixture("tests/golden/fig5_s3000_ss1000.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_fig5_json(/*workers=*/2), expected)
      << "optimized hierarchy diverged from the seed implementation";
}

TEST(GoldenFig5, WorkerCountDoesNotChangeOutput) {
  const std::string expected = read_fixture("tests/golden/fig5_s3000_ss1000.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_fig5_json(/*workers=*/5), expected)
      << "sharded campaign output must be worker-count invariant";
}

TEST(GoldenAttackMatrix, MatchesCommittedFixtureByteForByte) {
  const std::string expected =
      read_fixture("tests/golden/attack_matrix_s1200_ss400.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_attack_matrix_json(/*workers=*/2), expected)
      << "attack_matrix diverged from the committed fixture";
  // The fixture itself must certify the paper's qualitative ordering.
  EXPECT_NE(expected.find("\"modulo_strictly_most_leaky\":true"),
            std::string::npos)
      << "fixture lost the modulo-most-leaky ordering";
}

TEST(GoldenAttackMatrix, WorkerCountDoesNotChangeOutput) {
  const std::string expected =
      read_fixture("tests/golden/attack_matrix_s1200_ss400.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_attack_matrix_json(/*workers=*/5), expected)
      << "attack_matrix output must be worker-count invariant";
}

TEST(GoldenFlushMatrix, MatchesCommittedFixtureByteForByte) {
  const std::string expected =
      read_fixture("tests/golden/flush_matrix_s600_ss200.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_experiment_json("flush_matrix", 600, 200, /*workers=*/2),
            expected)
      << "flush_matrix diverged from the committed fixture";
  // The fixture itself must certify the flush-channel claims: shared-memory
  // flushes defeat placement randomization AND partitioning, while the
  // observable-side defenses (quantization, random fill) blind the channel
  // and Clepsydra's TTLs are too long to matter.
  for (const char* claim :
       {"\"flush_reload_defeats_placement_randomization\":true",
        "\"partitioning_does_not_stop_flush_reload\":true",
        "\"flush_flush_line_resolves_modulo\":true",
        "\"clepsydra_ttls_outlive_flush_window\":true",
        "\"random_fill_blinds_flush_reload\":true",
        "\"quantization_blinds_flush_channel\":true"}) {
    EXPECT_NE(expected.find(claim), std::string::npos)
        << "fixture lost claim " << claim;
  }
}

TEST(GoldenFlushMatrix, WorkerCountDoesNotChangeOutput) {
  const std::string expected =
      read_fixture("tests/golden/flush_matrix_s600_ss200.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_experiment_json("flush_matrix", 600, 200, /*workers=*/5),
            expected)
      << "flush_matrix output must be worker-count invariant";
}

TEST(GoldenCtAudit, MatchesCommittedFixtureAndCertifiesTheKernels) {
  // The constant-time audit is a pure function of the kernel sources and
  // the secret spec - samples, seed and workers play no role - so any
  // worker count must reproduce the fixture bytes.
  const std::string expected = read_fixture("tests/golden/ct_audit.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_experiment_json("ct_audit", 1, 1, /*workers=*/2), expected)
      << "ct_audit diverged from the committed fixture";
  EXPECT_EQ(run_experiment_json("ct_audit", 1, 1, /*workers=*/5), expected)
      << "ct_audit output must be worker-count invariant";
  // The fixture itself must certify the audit's three claims: the
  // leaky-by-construction kernels are flagged, the clean kernels are
  // certified, and the dynamic oracle never saw a violation the static
  // analyzer missed.
  for (const char* claim : {"\"leaky_kernels_flagged\":true",
                            "\"clean_kernels_certified\":true",
                            "\"static_covers_dynamic\":true"}) {
    EXPECT_NE(expected.find(claim), std::string::npos)
        << "fixture lost claim " << claim;
  }
  // The exact violating instructions are part of the contract: the
  // T-table kernel's secret-indexed lw and the secret-branch kernel's beq.
  EXPECT_NE(expected.find("\"kind\":\"memory_address\""), std::string::npos);
  EXPECT_NE(expected.find("\"kind\":\"branch_condition\""), std::string::npos);
}

TEST(GoldenPwcetMatrix, MatchesFixtureAndAssertsThePapersClaim) {
  // One heavyweight run covers both contracts: byte-identity against the
  // committed fixture at workers=2 (a worker count the fixture was NOT
  // generated with - tsc_run defaults to hardware concurrency - so this is
  // already a worker-invariance check), and the embedded claim booleans.
  // CI's bench-smoke job additionally diffs --shards 1 vs 8.
#ifndef NDEBUG
  // ~2 CPU-minutes at -O3; an order of magnitude more under Debug/ASan.
  // The Release jobs (including the explicit -O2/NDEBUG one) carry this
  // contract; the sanitizer job still covers the underlying code paths via
  // the pwcet_matrix/mbpta/gof/evt unit tests.
  GTEST_SKIP() << "pwcet_matrix golden runs in NDEBUG (Release) builds only";
#endif
  const std::string expected =
      read_fixture("tests/golden/pwcet_matrix_s240_ss80.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_experiment_json("pwcet_matrix", 240, 80, /*workers=*/2),
            expected)
      << "pwcet_matrix diverged from the committed fixture";
  // The fixture itself must certify the paper's qualitative thesis.
  EXPECT_NE(
      expected.find("\"deterministic_modulo_never_mbpta_applicable\":true"),
      std::string::npos)
      << "fixture lost the deterministic-not-applicable verdict";
  EXPECT_NE(
      expected.find("\"randomized_platforms_pass_with_converged_pwcet\":true"),
      std::string::npos)
      << "fixture lost the randomized-converged verdict";
}

}  // namespace
}  // namespace tsc::runner
