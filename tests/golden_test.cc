// Golden bit-identity test for the hot-path overhaul.
//
// tests/golden/fig5_s3000_ss1000.json is the fig5 campaign JSON produced by
// the PRE-refactor implementation (virtual mapper dispatch, hash-map seeds,
// AoS line array) at samples=3000, shard_size=1000.  The optimized hierarchy
// must reproduce it byte for byte, for any worker count: placement results,
// replacement decisions, RNG draw order, timing accounting and JSON
// serialization all have to be exactly preserved.
//
// If an intentional semantic change ever invalidates the fixture, regenerate
// it with:
//   tsc_run --experiment fig5 --samples 3000 --shard-size 1000 --json \
//       > tests/golden/fig5_s3000_ss1000.json
// and say so loudly in the commit message - this file is the contract that
// performance work does not move simulation results.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runner/experiment.h"

namespace tsc::runner {
namespace {

#ifndef TSC_SOURCE_DIR
#error "TSC_SOURCE_DIR must point at the repository root"
#endif

std::string read_fixture(const std::string& relative) {
  const std::string path = std::string(TSC_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Render the experiment exactly as `tsc_run --json` does (compact dump plus
/// trailing newline), so the fixture can be regenerated with the CLI.
std::string run_fig5_json(unsigned workers) {
  const Experiment* fig5 = find_experiment("fig5");
  EXPECT_NE(fig5, nullptr);
  RunOptions options;
  options.samples = 3000;
  options.shard_size = 1000;
  options.workers = workers;
  Json doc = Json::object();
  doc.set("experiment", fig5->name)
      .set("description", fig5->description)
      .set("seed", options.master_seed)
      .set("results", fig5->run(options));
  return doc.dump(-1) + "\n";
}

TEST(GoldenFig5, MatchesPreRefactorOutputByteForByte) {
  const std::string expected = read_fixture("tests/golden/fig5_s3000_ss1000.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_fig5_json(/*workers=*/2), expected)
      << "optimized hierarchy diverged from the seed implementation";
}

TEST(GoldenFig5, WorkerCountDoesNotChangeOutput) {
  const std::string expected = read_fixture("tests/golden/fig5_s3000_ss1000.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(run_fig5_json(/*workers=*/5), expected)
      << "sharded campaign output must be worker-count invariant";
}

}  // namespace
}  // namespace tsc::runner
