// Equivalence tests for the pre-decoded execution engine.
//
// Interpreter::run fetches through a PC-indexed decode cache and the flat
// word-granular memory; Interpreter::run_reference decodes every step from
// memory - the pre-overhaul path.  The two must agree bit-exactly on every
// kernel: RunResult (reason, steps, cycles), machine time and event
// counters, and the per-cache hit/miss statistics.  Also covered: the
// decode cache under self-modifying stores and pokes, out-of-image PCs,
// and the SparseMemory byte/word paths (alignment, page crossing, clear).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/interpreter.h"
#include "isa/kernels.h"
#include "rng/rng.h"
#include "sim/machine.h"

namespace tsc::isa {
namespace {

/// The paper platform (MBPTA/TSCache cache design), fully seeded.
sim::Machine paper_machine(std::uint64_t seed) {
  sim::Machine machine(
      sim::arm920t_config(cache::MapperKind::kRandomModulo,
                          cache::MapperKind::kHashRp,
                          cache::ReplacementKind::kRandom),
      std::make_shared<rng::XorShift64Star>(seed));
  machine.hierarchy().set_seed(ProcId{1}, Seed{rng::derive_seed(seed, 1)});
  machine.set_process(ProcId{1});
  return machine;
}

void expect_same_cache_stats(const cache::CacheStats& a,
                             const cache::CacheStats& b,
                             const std::string& level) {
  EXPECT_EQ(a.accesses, b.accesses) << level;
  EXPECT_EQ(a.hits, b.hits) << level;
  EXPECT_EQ(a.misses, b.misses) << level;
  EXPECT_EQ(a.evictions, b.evictions) << level;
  EXPECT_EQ(a.writebacks, b.writebacks) << level;
  EXPECT_EQ(a.contention_evictions, b.contention_evictions) << level;
}

/// Run `source` through the decode-cache path on one machine and the
/// reference decode loop on an identically seeded twin; every observable
/// must match.
void expect_paths_equivalent(const std::string& source,
                             std::uint64_t max_steps = 10'000'000) {
  sim::Machine fast_machine = paper_machine(99);
  sim::Machine ref_machine = paper_machine(99);
  Interpreter fast(fast_machine);
  Interpreter ref(ref_machine);
  const Program program = assemble(source, 0x1000);
  fast.load_program(program);
  ref.load_program(program);

  for (int pass = 0; pass < 2; ++pass) {  // cold then warm
    const RunResult a = fast.run(0x1000, max_steps);
    const RunResult b = ref.run_reference(0x1000, max_steps);
    EXPECT_EQ(static_cast<int>(a.reason), static_cast<int>(b.reason));
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.cycles, b.cycles);
  }
  EXPECT_EQ(fast_machine.now(), ref_machine.now());
  const sim::MachineStats& sa = fast_machine.stats();
  const sim::MachineStats& sb = ref_machine.stats();
  EXPECT_EQ(sa.instructions, sb.instructions);
  EXPECT_EQ(sa.loads, sb.loads);
  EXPECT_EQ(sa.stores, sb.stores);
  EXPECT_EQ(sa.branches, sb.branches);
  EXPECT_EQ(sa.taken_branches, sb.taken_branches);
  expect_same_cache_stats(fast_machine.hierarchy().l1i().stats(),
                          ref_machine.hierarchy().l1i().stats(), "L1I");
  expect_same_cache_stats(fast_machine.hierarchy().l1d().stats(),
                          ref_machine.hierarchy().l1d().stats(), "L1D");
  expect_same_cache_stats(fast_machine.hierarchy().l2().stats(),
                          ref_machine.hierarchy().l2().stats(), "L2");
  // Functional state too: registers.
  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(fast.reg(r), ref.reg(r)) << "r" << r;
  }
}

TEST(InterpreterEquivalence, EveryKernelMatchesReferenceDecode) {
  expect_paths_equivalent(vector_sum_source(0x40000, 5120));
  expect_paths_equivalent(memcpy_source(0x40000, 0x60000, 2048));
  expect_paths_equivalent(bubble_sort_source(0x40000, 256), 50'000'000);
  expect_paths_equivalent(matmul_source(0x40000, 0x50000, 0x60000, 24),
                          50'000'000);
  expect_paths_equivalent(stride_walk_source(0x40000, 8192, 64, 32768),
                          50'000'000);
}

TEST(InterpreterEquivalence, FlushKernelsMatchReferenceDecode) {
  // The flush instruction's present/absent/dirty latency split must agree
  // between the pre-decoded and reference paths - including flushes that
  // invalidate a line mid-run and reloads of freshly flushed lines.
  expect_paths_equivalent(flush_reload_source(0x40000, 64, 32), 50'000'000);
  expect_paths_equivalent(flush_storm_source(0x40000, 32, 32, 8),
                          50'000'000);
  // A flush aimed at the CODE region: the next fetch of that line must
  // re-miss identically on both paths (the decode cache is architectural
  // state, not cache state - it must NOT shield the fetch).
  expect_paths_equivalent(
      "        la   r1, 0x1000\n"
      "loop:   flush r1\n"
      "        addi r2, r2, 1\n"
      "        slti r3, r2, 50\n"
      "        bne  r3, r0, loop\n"
      "        halt\n",
      100'000);
}

TEST(InterpreterEquivalence, BadInstructionAndStepLimitMatch) {
  // An undecodable word inside the pre-decoded image (the cached !ok path
  // vs the reference decode failure).
  expect_paths_equivalent("addi r1, r0, 1\n.word 0xFFFFFFFF\n", 100);
  // Runaway loop cut by the step limit.
  expect_paths_equivalent("loop: addi r1, r1, 1\njal r0, loop\n", 1000);
}

TEST(InterpreterEquivalence, SelfModifyingStorePatchesTheDecodeCache) {
  // The program overwrites its own `target` instruction (a nop heading an
  // infinite loop) with the HALT word stored in its data tail.  A stale
  // decode cache would spin to the step limit; a coherent one halts -
  // exactly like the reference path.
  //
  // Image layout (base 0x1000, one word per line except la = 2):
  //   0x1000  la  r1, 0x1000        (words 0-1)
  //   0x1008  lw  r2, 24(r1)        ; the .word below
  //   0x100C  sw  r2, 16(r1)        ; patches `target`
  //   0x1010  target: nop
  //   0x1014  jal r0, target
  //   0x1018  .word <halt encoding>
  const std::uint32_t halt_word = encode(Instr{Op::kHalt, 0, 0, 0, 0});
  const std::string source =
      "        la   r1, 0x1000\n"
      "        lw   r2, 24(r1)\n"
      "        sw   r2, 16(r1)\n"
      "target: nop\n"
      "        jal  r0, target\n"
      "        .word " + std::to_string(halt_word) + "\n";
  {
    sim::Machine m = paper_machine(7);
    Interpreter interp(m);
    interp.load_program(assemble(source, 0x1000));
    const RunResult r = interp.run(0x1000, 100);
    EXPECT_EQ(r.reason, StopReason::kHalt)
        << "decode cache missed the self-modifying store";
    EXPECT_EQ(r.steps, 5u);  // la(2) + lw + sw + patched halt
  }
  expect_paths_equivalent(source, 100);
}

TEST(InterpreterEquivalence, PokeIntoTheImageRefreshesTheDecodeCache) {
  sim::Machine m = paper_machine(8);
  Interpreter interp(m);
  interp.load_program(assemble("nop\nnop\nhalt\n", 0x1000));
  // Overwrite the second nop with an addi via poke32.
  interp.poke32(0x1004, encode(Instr{Op::kAddi, 3, 0, 0, 42}));
  (void)interp.run(0x1000, 10);
  EXPECT_EQ(interp.reg(3), 42u);
  // And back to a halt via poke_bytes.
  const std::uint32_t halt_word = encode(Instr{Op::kHalt, 0, 0, 0, 0});
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<std::uint8_t>(halt_word >> (8 * i));
  }
  interp.poke_bytes(0x1004, bytes, 4);
  const RunResult r = interp.run(0x1000, 10);
  EXPECT_EQ(r.reason, StopReason::kHalt);
  EXPECT_EQ(r.steps, 2u);
}

TEST(InterpreterEquivalence, OutOfImagePcsDecodeFromMemory) {
  sim::Machine m = paper_machine(9);
  Interpreter interp(m);
  // A halt poked far outside any loaded image runs via the memory-decode
  // fallback...
  interp.poke32(0x5000, encode(Instr{Op::kHalt, 0, 0, 0, 0}));
  EXPECT_EQ(interp.run(0x5000, 10).reason, StopReason::kHalt);
  // ...including when a pre-decoded program jumps into it.
  interp.load_program(assemble("la r1, 0x5000\njalr r0, r1\n", 0x1000));
  const RunResult r = interp.run(0x1000, 10);
  EXPECT_EQ(r.reason, StopReason::kHalt);
  EXPECT_EQ(r.steps, 4u);  // la (2) + jalr + halt
}

// --- SparseMemory ----------------------------------------------------------

TEST(SparseMemoryTest, AlignedWordRoundTripAndByteView) {
  SparseMemory mem;
  mem.store32(0x2000, 0x11223344u);
  EXPECT_EQ(mem.load32(0x2000), 0x11223344u);
  // Little-endian byte view of the word path.
  EXPECT_EQ(mem.load8(0x2000), 0x44u);
  EXPECT_EQ(mem.load8(0x2001), 0x33u);
  EXPECT_EQ(mem.load8(0x2002), 0x22u);
  EXPECT_EQ(mem.load8(0x2003), 0x11u);
  // Byte stores read back through the word path.
  mem.store8(0x2001, 0xAB);
  EXPECT_EQ(mem.load32(0x2000), 0x1122AB44u);
}

TEST(SparseMemoryTest, UnalignedAndPageCrossingAccesses) {
  SparseMemory mem;
  // Straddles the 4KB page boundary at 0x1000.
  mem.store32(0xFFE, 0xDEADBEEFu);
  EXPECT_EQ(mem.load32(0xFFE), 0xDEADBEEFu);
  EXPECT_EQ(mem.load8(0xFFE), 0xEFu);
  EXPECT_EQ(mem.load8(0xFFF), 0xBEu);
  EXPECT_EQ(mem.load8(0x1000), 0xADu);
  EXPECT_EQ(mem.load8(0x1001), 0xDEu);
  // The aligned words containing the halves agree with the byte writes.
  EXPECT_EQ(mem.load32(0xFFC), 0xBEEF0000u);
  EXPECT_EQ(mem.load32(0x1000), 0x0000DEADu);
  // Unaligned load within one page.
  mem.store32(0x3000, 0x04030201u);
  mem.store32(0x3004, 0x08070605u);
  EXPECT_EQ(mem.load32(0x3001), 0x05040302u);
}

TEST(SparseMemoryTest, UntouchedMemoryReadsZeroAndClearRestoresIt) {
  SparseMemory mem;
  EXPECT_EQ(mem.load32(0x1234 * 4096), 0u);
  EXPECT_EQ(mem.load8(77), 0u);
  mem.store32(0x4000, 1);
  mem.store32(0x400000, 2);  // distinct page, distinct slot
  mem.store8(0x4000F, 3);
  mem.clear();
  EXPECT_EQ(mem.load32(0x4000), 0u);
  EXPECT_EQ(mem.load32(0x400000), 0u);
  EXPECT_EQ(mem.load8(0x4000F), 0u);
  // Still writable after clear.
  mem.store32(0x4000, 5);
  EXPECT_EQ(mem.load32(0x4000), 5u);
}

TEST(SparseMemoryTest, SlotConflictsResolveThroughTheMap) {
  // Pages 1MB apart collide in the 256-slot direct-mapped table (page
  // numbers differ by exactly kSlots); alternating accesses must still
  // read their own data.
  SparseMemory mem;
  const Addr a = 0x10000;            // page 0x10
  const Addr b = a + 256 * 4096;     // page 0x110 -> same slot
  mem.store32(a, 0xAAAAAAAAu);
  mem.store32(b, 0xBBBBBBBBu);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mem.load32(a), 0xAAAAAAAAu);
    EXPECT_EQ(mem.load32(b), 0xBBBBBBBBu);
  }
}

TEST(InterpreterEquivalence, ResetRestoresFreshSemantics) {
  sim::Machine m1 = paper_machine(11);
  sim::Machine m2 = paper_machine(11);
  Interpreter reused(m1);
  Interpreter fresh(m2);
  // Dirty the reused interpreter with a different program + data.
  reused.load_program(assemble(memcpy_source(0x40000, 0x60000, 64), 0x1000));
  (void)reused.run(0x1000);
  reused.reset();
  m1.reset(123);
  m2.reset(123);
  const Program program = assemble(vector_sum_source(0x40000, 256), 0x1000);
  reused.load_program(program);
  fresh.load_program(program);
  const RunResult a = reused.run(0x1000);
  const RunResult b = fresh.run(0x1000);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(reused.reg(3), fresh.reg(3));
  EXPECT_EQ(m1.now(), m2.now());
}

}  // namespace
}  // namespace tsc::isa
