// Tests for TSISA: encoding, assembler, interpreter, kernels.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "isa/assembler.h"
#include "isa/interpreter.h"
#include "isa/kernels.h"
#include "rng/rng.h"

namespace tsc::isa {
namespace {

sim::Machine make_machine() {
  sim::HierarchyConfig cfg;
  cfg.l1i.config.geometry = cache::Geometry(4096, 2, 32);
  cfg.l1d.config.geometry = cache::Geometry(4096, 2, 32);
  cache::CacheSpec l2;
  l2.config.geometry = cache::Geometry(32768, 4, 32);
  cfg.l2 = l2;
  return sim::Machine(cfg, std::make_shared<rng::XorShift64Star>(3));
}

// --- encoding ----------------------------------------------------------------

TEST(IsaEncoding, RoundTripAllFormats) {
  const std::vector<Instr> cases{
      {Op::kAdd, 1, 2, 3, 0},    {Op::kMul, 15, 14, 13, 0},
      {Op::kAddi, 4, 5, 0, -32768}, {Op::kAddi, 4, 5, 0, 32767},
      {Op::kOri, 7, 7, 0, 0xFFFF},  {Op::kLui, 9, 0, 0, 0xABCD},
      {Op::kLw, 2, 1, 0, 100},   {Op::kSw, 3, 2, 0, -4},
      {Op::kBeq, 0, 1, 2, -100}, {Op::kBge, 0, 3, 4, 8191},
      {Op::kJal, 15, 0, 0, -1000}, {Op::kJalr, 0, 15, 0, 0},
      {Op::kHalt, 0, 0, 0, 0},   {Op::kNop, 0, 0, 0, 0},
  };
  for (const Instr& instr : cases) {
    const auto decoded = decode(encode(instr));
    ASSERT_TRUE(decoded.has_value()) << to_string(instr);
    EXPECT_EQ(*decoded, instr) << to_string(instr);
  }
}

TEST(IsaEncoding, InvalidOpcodeRejected) {
  EXPECT_FALSE(decode(0xFFFFFFFFu).has_value());
}

TEST(IsaEncoding, MnemonicsRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Op::kNop); ++i) {
    const Op op = static_cast<Op>(i);
    const auto back = op_from_mnemonic(mnemonic(op));
    ASSERT_TRUE(back.has_value()) << mnemonic(op);
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(op_from_mnemonic("bogus").has_value());
}

TEST(IsaEncoding, ToStringFormats) {
  EXPECT_EQ(to_string({Op::kAddi, 1, 0, 0, 10}), "addi r1, r0, 10");
  EXPECT_EQ(to_string({Op::kLw, 2, 1, 0, 8}), "lw r2, 8(r1)");
  EXPECT_EQ(to_string({Op::kAdd, 3, 1, 2, 0}), "add r3, r1, r2");
  EXPECT_EQ(to_string({Op::kHalt, 0, 0, 0, 0}), "halt");
}

// --- assembler -----------------------------------------------------------------

TEST(Assembler, BasicProgramAndSymbols) {
  const Program p = assemble(R"(
start:  addi r1, r0, 5
        addi r2, r0, 7
        add  r3, r1, r2
        halt
)",
                             0x1000);
  EXPECT_EQ(p.base, 0x1000u);
  EXPECT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.symbols.at("start"), 0x1000u);
}

TEST(Assembler, BranchTargetsArePcRelative) {
  const Program p = assemble(R"(
        addi r1, r0, 0
loop:   addi r1, r1, 1
        beq  r0, r0, loop
)",
                             0);
  const auto branch = decode(p.words[2]);
  ASSERT_TRUE(branch.has_value());
  // Branch at 0x8 targeting 0x4: offset = (4 - 8 - 4)/4 = -2.
  EXPECT_EQ(branch->imm, -2);
}

TEST(Assembler, LaExpandsToLuiOri) {
  const Program p = assemble("la r1, 0x12345678\nhalt\n", 0);
  ASSERT_EQ(p.words.size(), 3u);
  const auto lui = decode(p.words[0]);
  const auto ori = decode(p.words[1]);
  EXPECT_EQ(lui->op, Op::kLui);
  EXPECT_EQ(lui->imm, 0x1234);
  EXPECT_EQ(ori->op, Op::kOri);
  EXPECT_EQ(ori->imm, 0x5678);
}

TEST(Assembler, DirectivesEmitData) {
  const Program p = assemble(R"(
        halt
value:  .word 0xDEADBEEF
buf:    .space 8
)",
                             0x100);
  ASSERT_EQ(p.words.size(), 4u);  // halt + word + 2 space words
  EXPECT_EQ(p.words[1], 0xDEADBEEFu);
  EXPECT_EQ(p.symbols.at("value"), 0x104u);
  EXPECT_EQ(p.symbols.at("buf"), 0x108u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  EXPECT_THROW((void)assemble("frobnicate r1, r2\n", 0), AssemblyError);
  EXPECT_THROW((void)assemble("addi r1, r0\n", 0), AssemblyError);
  EXPECT_THROW((void)assemble("addi r99, r0, 1\n", 0), AssemblyError);
  EXPECT_THROW((void)assemble("beq r0, r0, nowhere\n", 0), AssemblyError);
  EXPECT_THROW((void)assemble("addi r1, r0, 100000\n", 0), AssemblyError);
  EXPECT_THROW((void)assemble("x: halt\nx: halt\n", 0), AssemblyError);
  try {
    (void)assemble("nop\nbogus r1\n", 0);
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

/// Assemble `source` expecting failure, and pin the exact diagnostic: the
/// messages are part of the assembler's contract (tooling and humans parse
/// them), so wording changes must be deliberate.
void expect_asm_error(const std::string& source,
                      const std::string& expected) {
  try {
    (void)assemble(source, 0x1000);
    FAIL() << "expected AssemblyError for: " << source;
  } catch (const AssemblyError& e) {
    EXPECT_EQ(std::string(e.what()), expected) << "for: " << source;
  }
}

TEST(AssemblerErrors, UnknownMnemonicNamesTheOffender) {
  expect_asm_error("frobnicate r1, r2\n",
                   "line 1: unknown mnemonic 'frobnicate'");
}

TEST(AssemblerErrors, OperandCountMismatchSaysExpectedAndGot) {
  expect_asm_error("addi r1, r0\n", "line 1: 'addi' expects 3 operands, got 2");
  expect_asm_error("add r1, r2, r3, r4\n",
                   "line 1: 'add' expects 3 operands, got 4");
  expect_asm_error("jalr r0\n", "line 1: 'jalr' expects 2 operands, got 1");
  expect_asm_error("flush\n", "line 1: 'flush' expects 1 operands, got 0");
}

TEST(AssemblerErrors, RegistersAboveFifteenAreRejected) {
  expect_asm_error("addi r16, r0, 1\n", "line 1: expected register, got 'r16'");
  expect_asm_error("addi r99, r0, 1\n", "line 1: expected register, got 'r99'");
  expect_asm_error("add r1, x2, r3\n", "line 1: expected register, got 'x2'");
}

TEST(AssemblerErrors, ImmediatesBeyondSixteenBitsAreRejected) {
  expect_asm_error("addi r1, r0, 100000\n",
                   "line 1: immediate 100000 does not fit 16 bits (use li)");
  expect_asm_error("addi r1, r0, -32769\n",
                   "line 1: immediate -32769 does not fit 16 bits (use li)");
  // The boundary values assemble: [-32768, 65535] is the accepted window
  // (negative = sign-extended arithmetic form, large = raw logical form).
  EXPECT_EQ(assemble("addi r1, r0, -32768\n", 0).words.size(), 1u);
  EXPECT_EQ(assemble("ori r1, r0, 65535\n", 0).words.size(), 1u);
}

TEST(AssemblerErrors, BranchAndJumpTargetsOutOfRangeAreRejected) {
  // Numeric targets are raw word offsets; +-2^13 words for branches,
  // +-2^21 for jal.
  expect_asm_error("beq r0, r0, 8192\n", "line 1: branch target out of range");
  expect_asm_error("beq r0, r0, -8193\n", "line 1: branch target out of range");
  expect_asm_error("jal r0, 2097152\n", "line 1: branch target out of range");
  EXPECT_EQ(assemble("beq r0, r0, 8191\n", 0).words.size(), 1u);
}

TEST(AssemblerErrors, MalformedMemoryOperandsPinpointTheToken) {
  expect_asm_error("lw r1, 4 r2\n", "line 1: expected offset(base), got '4 r2'");
  expect_asm_error("lw r1, zz(r2)\n", "line 1: bad memory offset in 'zz(r2)'");
  expect_asm_error("lw r1, 0(x2)\n", "line 1: bad base register in '0(x2)'");
  expect_asm_error("lw r1, 40000(r2)\n", "line 1: memory offset out of range");
  expect_asm_error("sw r1, nowhere\n",
                   "line 1: expected offset(base), got 'nowhere'");
}

TEST(AssemblerErrors, SymbolAndLabelProblemsAreNamed) {
  expect_asm_error("beq r0, r0, nowhere\n", "line 1: unknown symbol 'nowhere'");
  expect_asm_error("x: halt\nx: halt\n", "line 2: duplicate label 'x'");
  expect_asm_error(": halt\n", "line 1: malformed label");
}

TEST(AssemblerErrors, DirectiveAndPseudoOpArityAreChecked) {
  expect_asm_error(".space -4\n", "line 1: .space needs a byte count");
  expect_asm_error(".space xyz\n", "line 1: .space needs a byte count");
  expect_asm_error("la r1\n", "line 1: 'la/li' expects rd, value");
  expect_asm_error("li r1, 1, 2\n", "line 1: 'la/li' expects rd, value");
}

// --- interpreter -----------------------------------------------------------------

TEST(InterpreterTest, ArithmeticAndRegisters) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.load_program(assemble(R"(
        addi r1, r0, 21
        addi r2, r0, 2
        mul  r3, r1, r2
        sub  r4, r3, r2
        halt
)",
                               0));
  const RunResult r = interp.run(0);
  EXPECT_EQ(r.reason, StopReason::kHalt);
  EXPECT_EQ(interp.reg(3), 42u);
  EXPECT_EQ(interp.reg(4), 40u);
  EXPECT_EQ(r.steps, 5u);
  EXPECT_GT(r.cycles, 0u);
}

TEST(InterpreterTest, RegisterZeroStaysZero) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.load_program(assemble("addi r0, r0, 99\nhalt\n", 0));
  (void)interp.run(0);
  EXPECT_EQ(interp.reg(0), 0u);
}

TEST(InterpreterTest, LoadsAndStores) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.poke32(0x2000, 1234);
  interp.load_program(assemble(R"(
        la  r1, 0x2000
        lw  r2, 0(r1)
        addi r2, r2, 1
        sw  r2, 4(r1)
        lb  r3, 0(r1)       ; low byte of 1234 = 210 -> sign-ext: -46
        lbu r4, 0(r1)
        halt
)",
                               0));
  (void)interp.run(0);
  EXPECT_EQ(interp.peek32(0x2004), 1235u);
  EXPECT_EQ(static_cast<std::int32_t>(interp.reg(3)), -46);
  EXPECT_EQ(interp.reg(4), 210u);
}

TEST(InterpreterTest, BranchLoopComputesSum) {
  auto m = make_machine();
  Interpreter interp(m);
  // Sum 1..10 = 55.
  interp.load_program(assemble(R"(
        addi r1, r0, 0      ; sum
        addi r2, r0, 1      ; i
        addi r3, r0, 10     ; n
loop:   add  r1, r1, r2
        addi r2, r2, 1
        bge  r3, r2, loop
        halt
)",
                               0));
  const RunResult r = interp.run(0);
  EXPECT_EQ(r.reason, StopReason::kHalt);
  EXPECT_EQ(interp.reg(1), 55u);
}

TEST(InterpreterTest, JalAndJalrImplementCalls) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.load_program(assemble(R"(
        jal  r15, func
        addi r2, r0, 1      ; executed after return
        halt
func:   addi r1, r0, 7
        jalr r0, r15
)",
                               0));
  (void)interp.run(0);
  EXPECT_EQ(interp.reg(1), 7u);
  EXPECT_EQ(interp.reg(2), 1u);
}

TEST(InterpreterTest, StepLimitStopsRunawayLoops) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.load_program(assemble("loop: jal r0, loop\n", 0));
  const RunResult r = interp.run(0, 100);
  EXPECT_EQ(r.reason, StopReason::kStepLimit);
  EXPECT_EQ(r.steps, 100u);
}

TEST(InterpreterTest, BadInstructionStops) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.poke32(0, 0xFFFFFFFFu);
  const RunResult r = interp.run(0, 100);
  EXPECT_EQ(r.reason, StopReason::kBadInstruction);
}

TEST(InterpreterTest, WarmRunIsFasterThanColdRun) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.load_program(assemble(vector_sum_source(0x4000, 64), 0));
  const RunResult cold = interp.run(0);
  const RunResult warm = interp.run(0);
  EXPECT_EQ(cold.steps, warm.steps) << "functionally identical runs";
  EXPECT_LT(warm.cycles, cold.cycles);
}

// --- kernels -----------------------------------------------------------------

TEST(Kernels, VectorSum) {
  auto m = make_machine();
  Interpreter interp(m);
  std::uint32_t expected = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    interp.poke32(0x4000 + 4 * i, i * 3 + 1);
    expected += i * 3 + 1;
  }
  interp.load_program(assemble(vector_sum_source(0x4000, 50), 0));
  const RunResult r = interp.run(0);
  EXPECT_EQ(r.reason, StopReason::kHalt);
  EXPECT_EQ(interp.reg(3), expected);
}

TEST(Kernels, Memcpy) {
  auto m = make_machine();
  Interpreter interp(m);
  for (std::uint32_t i = 0; i < 32; ++i) interp.poke32(0x4000 + 4 * i, 100 + i);
  interp.load_program(assemble(memcpy_source(0x4000, 0x8000, 32), 0));
  (void)interp.run(0);
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(interp.peek32(0x8000 + 4 * i), 100 + i);
  }
}

TEST(Kernels, BubbleSortSortsDescendingInput) {
  auto m = make_machine();
  Interpreter interp(m);
  constexpr unsigned kN = 24;
  for (std::uint32_t i = 0; i < kN; ++i) {
    interp.poke32(0x4000 + 4 * i, kN - i);
  }
  interp.load_program(assemble(bubble_sort_source(0x4000, kN), 0));
  const RunResult r = interp.run(0, 5'000'000);
  ASSERT_EQ(r.reason, StopReason::kHalt);
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(interp.peek32(0x4000 + 4 * i), i + 1) << "index " << i;
  }
}

TEST(Kernels, MatmulAgainstHostReference) {
  auto m = make_machine();
  Interpreter interp(m);
  constexpr unsigned kN = 6;
  std::uint32_t a[kN][kN];
  std::uint32_t b[kN][kN];
  rng::Pcg32 g(17);
  for (unsigned i = 0; i < kN; ++i) {
    for (unsigned j = 0; j < kN; ++j) {
      a[i][j] = static_cast<std::uint32_t>(g.next_below(100));
      b[i][j] = static_cast<std::uint32_t>(g.next_below(100));
      interp.poke32(0x4000 + 4 * (i * kN + j), a[i][j]);
      interp.poke32(0x8000 + 4 * (i * kN + j), b[i][j]);
    }
  }
  interp.load_program(assemble(matmul_source(0x4000, 0x8000, 0xC000, kN), 0));
  const RunResult r = interp.run(0, 5'000'000);
  ASSERT_EQ(r.reason, StopReason::kHalt);
  for (unsigned i = 0; i < kN; ++i) {
    for (unsigned j = 0; j < kN; ++j) {
      std::uint32_t want = 0;
      for (unsigned k = 0; k < kN; ++k) want += a[i][k] * b[k][j];
      EXPECT_EQ(interp.peek32(0xC000 + 4 * (i * kN + j)), want)
          << "c[" << i << "][" << j << "]";
    }
  }
}

TEST(Kernels, StrideWalkTouchesConfiguredFootprint) {
  auto m = make_machine();
  Interpreter interp(m);
  interp.load_program(assemble(stride_walk_source(0x10000, 256, 32, 4096), 0));
  const RunResult r = interp.run(0);
  ASSERT_EQ(r.reason, StopReason::kHalt);
  EXPECT_EQ(m.stats().loads, 256u);
}

}  // namespace
}  // namespace tsc::isa
