// Pooling and batching guarantees of the execution engine.
//
//  * Machine::reset(seed) + re-configuration must reproduce a freshly
//    constructed machine bit-exactly (cycles, stats, rng draw order) - the
//    MachinePool contract the MBPTA fresh-layout protocols rely on.
//  * MachinePool reuse-vs-fresh equality on seeded layouts, for policy
//    machines (all policies x partitioning) and Setups.
//  * Machine::instr_block's same-line batching must yield exactly the
//    cycles and stats of per-instruction calls, on hit-friendly and
//    allocation-refusing (random-fill) configurations alike.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/policy.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "isa/interpreter.h"
#include "isa/kernels.h"
#include "rng/rng.h"
#include "runner/machine_pool.h"
#include "sim/machine.h"

namespace tsc::runner {
namespace {

void expect_same_machine_state(sim::Machine& a, sim::Machine& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.stats().instructions, b.stats().instructions);
  EXPECT_EQ(a.stats().loads, b.stats().loads);
  EXPECT_EQ(a.stats().stores, b.stats().stores);
  EXPECT_EQ(a.stats().branches, b.stats().branches);
  EXPECT_EQ(a.stats().taken_branches, b.stats().taken_branches);
  for (auto level : {0, 1, 2}) {
    cache::Cache& ca = level == 0   ? a.hierarchy().l1i()
                       : level == 1 ? a.hierarchy().l1d()
                                    : a.hierarchy().l2();
    cache::Cache& cb = level == 0   ? b.hierarchy().l1i()
                       : level == 1 ? b.hierarchy().l1d()
                                    : b.hierarchy().l2();
    EXPECT_EQ(ca.stats().accesses, cb.stats().accesses) << "level " << level;
    EXPECT_EQ(ca.stats().hits, cb.stats().hits) << "level " << level;
    EXPECT_EQ(ca.stats().evictions, cb.stats().evictions) << "level " << level;
    EXPECT_EQ(ca.stats().writebacks, cb.stats().writebacks)
        << "level " << level;
    EXPECT_EQ(ca.stats().contention_evictions,
              cb.stats().contention_evictions)
        << "level " << level;
  }
}

/// A deterministic mixed workload exercising fetch, data, branch, reseed
/// and flush paths.
void drive(sim::Machine& m) {
  m.set_process(core::kMatrixVictim);
  for (int i = 0; i < 2000; ++i) {
    m.instr(0x1000 + 4 * (i % 128));
    m.load(0x2000, 0x80000 + 96 * i);
    if (i % 3 == 0) m.store(0x2004, 0x90000 + 32 * i);
    m.branch(0x2008, i % 5 == 0);
  }
  m.set_process(core::kMatrixAttacker);
  for (int i = 0; i < 500; ++i) m.load(0x3000, 0x80000 + 96 * i);
  m.set_seed(core::kMatrixVictim, Seed{0xABCD});
  m.set_process(core::kMatrixVictim);
  for (int i = 0; i < 500; ++i) m.load(0x3000, 0x80000 + 96 * i);
  m.flush_caches();
  for (int i = 0; i < 200; ++i) m.instr(0x1000 + 4 * i);
}

TEST(MachineReset, ReplaysFreshConstructionBitExactly) {
  for (const core::PlacementPolicy policy : core::all_policies()) {
    // A machine that already simulated a full (different-seed) deployment...
    auto reused = core::build_policy_machine(policy, 111, /*partitioned=*/false);
    drive(*reused);
    // ...reset + reconfigured must match a genuinely fresh twin exactly.
    reused->reset(core::policy_machine_rng_seed(222));
    core::configure_policy_machine(*reused, 222, /*partitioned=*/false);
    auto fresh = core::build_policy_machine(policy, 222, /*partitioned=*/false);
    drive(*reused);
    drive(*fresh);
    expect_same_machine_state(*reused, *fresh);
  }
}

TEST(MachinePoolTest, PolicyMachineReuseMatchesFreshOnSeededLayouts) {
  const isa::Program program =
      isa::assemble(isa::vector_sum_source(0x40000, 1024), 0x1000);
  for (const core::PlacementPolicy policy : core::all_policies()) {
    for (const bool partitioned : {false, true}) {
      MachinePool pool;
      // Dirty the slot with a full run under another deployment seed.
      {
        const PooledMachine lease = pool.policy_machine(policy, 7, partitioned);
        lease.machine.set_process(core::kMatrixVictim);
        lease.interpreter.load_program(program);
        (void)lease.interpreter.run(0x1000);
      }
      // Reuse under the seed of record, against a fresh build.
      const PooledMachine lease = pool.policy_machine(policy, 42, partitioned);
      lease.machine.set_process(core::kMatrixVictim);
      lease.interpreter.load_program(program);
      const isa::RunResult warm_a = lease.interpreter.run(0x1000);
      const isa::RunResult timed_a = lease.interpreter.run(0x1000);

      auto fresh = core::build_policy_machine(policy, 42, partitioned);
      fresh->set_process(core::kMatrixVictim);
      isa::Interpreter interp(*fresh);
      interp.load_program(program);
      const isa::RunResult warm_b = interp.run(0x1000);
      const isa::RunResult timed_b = interp.run(0x1000);

      EXPECT_EQ(warm_a.cycles, warm_b.cycles)
          << core::to_string(policy) << " partitioned=" << partitioned;
      EXPECT_EQ(timed_a.cycles, timed_b.cycles)
          << core::to_string(policy) << " partitioned=" << partitioned;
      expect_same_machine_state(lease.machine, *fresh);
    }
  }
}

TEST(MachinePoolTest, SetupReuseMatchesFreshSetup) {
  const isa::Program program =
      isa::assemble(isa::vector_sum_source(0x40000, 1024), 0x1000);
  constexpr ProcId kVictim{1};
  for (const core::SetupKind kind : core::all_setups()) {
    MachinePool pool;
    {
      const PooledSetup lease = pool.setup(kind, 5);
      lease.setup.register_process(kVictim);
      lease.setup.machine().set_process(kVictim);
      lease.interpreter.load_program(program);
      (void)lease.interpreter.run(0x1000);
    }
    const PooledSetup lease = pool.setup(kind, 77);
    lease.setup.register_process(kVictim);
    lease.setup.machine().set_process(kVictim);
    lease.interpreter.load_program(program);
    const double pooled_warm =
        static_cast<double>(lease.interpreter.run(0x1000).cycles);
    const double pooled_timed =
        static_cast<double>(lease.interpreter.run(0x1000).cycles);

    core::Setup fresh(kind, 77);
    fresh.register_process(kVictim);
    fresh.machine().set_process(kVictim);
    isa::Interpreter interp(fresh.machine());
    interp.load_program(program);
    EXPECT_EQ(pooled_warm, static_cast<double>(interp.run(0x1000).cycles))
        << core::to_string(kind);
    EXPECT_EQ(pooled_timed, static_cast<double>(interp.run(0x1000).cycles))
        << core::to_string(kind);
    expect_same_machine_state(lease.setup.machine(), fresh.machine());
  }
}

// --- instr_block batching --------------------------------------------------

sim::HierarchyConfig small_config() {
  sim::HierarchyConfig cfg;
  cfg.l1i.config.geometry = cache::Geometry(4096, 2, 32);
  cfg.l1d.config.geometry = cache::Geometry(4096, 2, 32);
  cache::CacheSpec l2;
  l2.config.geometry = cache::Geometry(32768, 4, 32);
  cfg.l2 = l2;
  return cfg;
}

void expect_instr_block_exact(sim::HierarchyConfig cfg, std::uint64_t seed) {
  sim::Machine batched(cfg, std::make_shared<rng::XorShift64Star>(seed));
  sim::Machine serial(cfg, std::make_shared<rng::XorShift64Star>(seed));
  // Mixed block shapes: line-aligned, mid-line starts, single instructions,
  // blocks spanning several lines, interleaved with data traffic.
  const struct {
    Addr pc;
    unsigned n;
  } blocks[] = {{0x2000, 64}, {0x2104, 7}, {0x2204, 1},  {0x221C, 3},
                {0x3000, 8},  {0x3010, 29}, {0x2000, 64}, {0x5FFC, 2}};
  for (const auto& block : blocks) {
    batched.instr_block(block.pc, block.n);
    for (unsigned i = 0; i < block.n; ++i) serial.instr(block.pc + 4 * i);
    batched.load(0x100, 0x8000 + block.pc % 4096);
    serial.load(0x100, 0x8000 + block.pc % 4096);
  }
  expect_same_machine_state(batched, serial);
}

TEST(InstrBlock, BatchedAccountingMatchesPerInstructionCalls) {
  // LRU (touch must stay idempotent), random replacement, and a random-fill
  // L1I whose misses do NOT leave the line resident (the batch must detect
  // that and fall back).
  expect_instr_block_exact(small_config(), 3);

  sim::HierarchyConfig random_repl = small_config();
  random_repl.l1i.replacement = cache::ReplacementKind::kRandom;
  random_repl.l1d.replacement = cache::ReplacementKind::kRandom;
  random_repl.l1i.mapper = cache::MapperKind::kHashRp;
  expect_instr_block_exact(random_repl, 11);

  sim::HierarchyConfig random_fill = small_config();
  random_fill.l1i.config.random_fill_window = 4;
  random_fill.l1i.replacement = cache::ReplacementKind::kRandom;
  expect_instr_block_exact(random_fill, 17);
}

TEST(InstrBlock, RepeatHitLeavesStatsUntouchedWhenNotResident) {
  sim::Machine m(small_config(), std::make_shared<rng::XorShift64Star>(1));
  m.set_process(ProcId{1});
  const cache::CacheStats before = m.hierarchy().l1i().stats();
  EXPECT_FALSE(m.hierarchy().repeat_instr_hits(ProcId{1}, 0x7000, 5));
  const cache::CacheStats after = m.hierarchy().l1i().stats();
  EXPECT_EQ(before.accesses, after.accesses);
  EXPECT_EQ(before.hits, after.hits);
  // Once fetched, the batch path accounts exactly `count` hits.
  m.instr(0x7000);
  EXPECT_TRUE(m.hierarchy().repeat_instr_hits(ProcId{1}, 0x7000, 5));
  const cache::CacheStats hit = m.hierarchy().l1i().stats();
  EXPECT_EQ(hit.accesses, after.accesses + 6);  // 1 fetch + 5 batched
  EXPECT_EQ(hit.hits, after.hits + 5);
}

}  // namespace
}  // namespace tsc::runner
