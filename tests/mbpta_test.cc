// Tests for the MBPTA workflow (mbpta/analysis.h), including end-to-end runs
// against the simulated platforms: random caches must pass the i.i.d. gate
// across seeds; a deterministic cache's layout-dependence must be visible.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/setup.h"
#include "isa/interpreter.h"
#include "isa/kernels.h"
#include "mbpta/analysis.h"
#include "rng/rng.h"

namespace tsc::mbpta {
namespace {

std::vector<double> gumbel_like_sample(int n, std::uint64_t seed) {
  rng::Pcg32 g(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    xs.push_back(1000.0 - 20.0 * std::log(-std::log(g.next_double() + 1e-15)));
  }
  return xs;
}

TEST(Analysis, IidSamplePassesAndYieldsModel) {
  const auto xs = gumbel_like_sample(2000, 3);
  const AnalysisReport report = analyze(xs);
  EXPECT_TRUE(report.iid.passed());
  ASSERT_TRUE(report.mbpta_applicable());
  EXPECT_GT(report.pwcet(1e-10), report.sample.max);
  EXPECT_GT(report.pwcet(1e-12), report.pwcet(1e-6));
}

TEST(Analysis, AutocorrelatedSampleIsRejected) {
  rng::Pcg32 g(4);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 2000; ++i) {
    xs.push_back(0.7 * xs.back() + g.next_double());
  }
  const AnalysisReport report = analyze(xs);
  EXPECT_FALSE(report.mbpta_applicable());
  EXPECT_THROW((void)report.pwcet(1e-10), std::logic_error);
  EXPECT_THROW((void)report.curve(), std::logic_error);
}

TEST(Analysis, TooFewRunsRejected) {
  const auto xs = gumbel_like_sample(100, 5);
  EXPECT_THROW((void)analyze(xs), std::invalid_argument);
}

TEST(Analysis, MisconfiguredMinRunsFailsLoudly) {
  // min_runs below the PwcetModel floor must be rejected up front - in
  // Release builds too - rather than riding an assert into UB mid-campaign.
  const auto xs = gumbel_like_sample(2000, 5);
  AnalysisConfig cfg;
  cfg.min_runs = 50;
  EXPECT_THROW((void)analyze(xs, cfg), std::invalid_argument);
  cfg.min_runs = 300;
  cfg.alpha = 1.5;
  EXPECT_THROW((void)analyze(xs, cfg), std::invalid_argument);
  cfg.alpha = 0.05;
  cfg.block = 0;
  EXPECT_THROW((void)analyze(xs, cfg), std::invalid_argument);
  cfg.block = 20;
  cfg.lags = 0;
  EXPECT_THROW((void)analyze(xs, cfg), std::invalid_argument);
}

TEST(Analysis, ApplicableReportCarriesFitDiagnostics) {
  const auto xs = gumbel_like_sample(2000, 9);
  const AnalysisReport report = analyze(xs);
  ASSERT_TRUE(report.mbpta_applicable());
  ASSERT_TRUE(report.gof.has_value());
  EXPECT_TRUE(report.gof->defined);
  EXPECT_GT(report.gof->qq_r2, 0.95);
}

TEST(Convergence, IidSampleConverges) {
  const auto xs = gumbel_like_sample(1500, 10);
  AnalysisConfig cfg;
  const ConvergenceCurve curve = pwcet_convergence(xs, cfg, 1e-10, 6, 0.10);
  ASSERT_GE(curve.points.size(), 3u);
  EXPECT_EQ(curve.points.back().runs, 1500u);
  EXPECT_TRUE(curve.converged)
      << "final bounds: " << curve.points[curve.points.size() - 2].bound
      << " -> " << curve.final_bound();
}

TEST(Convergence, TrendingSampleDoesNotConverge) {
  // A steady upward trend: every prefix re-estimate chases a tail that is
  // still growing, so the bound keeps climbing across the grid and must not
  // be declared stable.
  rng::Pcg32 g(11);
  std::vector<double> xs;
  for (int i = 0; i < 600; ++i) {
    xs.push_back(1000.0 + 5.0 * i + 20.0 * g.next_double());
  }
  AnalysisConfig cfg;
  const ConvergenceCurve curve = pwcet_convergence(xs, cfg, 1e-10, 6, 0.10);
  ASSERT_GE(curve.points.size(), 3u);
  EXPECT_FALSE(curve.converged)
      << "bounds: " << curve.points.front().bound << " -> "
      << curve.final_bound();
}

TEST(Convergence, ValidatesInputs) {
  const auto xs = gumbel_like_sample(99, 12);
  AnalysisConfig cfg;
  EXPECT_THROW((void)pwcet_convergence(xs, cfg), std::invalid_argument);
  const auto ok = gumbel_like_sample(400, 13);
  EXPECT_THROW((void)pwcet_convergence(ok, cfg, 1e-10, 1),
               std::invalid_argument);
}

TEST(Analysis, ConstantSampleIsNotModeled) {
  const std::vector<double> xs(1000, 42.0);
  const AnalysisReport report = analyze(xs);
  EXPECT_FALSE(report.mbpta_applicable())
      << "a zero-variance sample has no tail to project";
}

TEST(Analysis, CurveMatchesFigure1Shape) {
  const auto xs = gumbel_like_sample(5000, 6);
  const AnalysisReport report = analyze(xs);
  ASSERT_TRUE(report.mbpta_applicable());
  const auto curve = report.curve(1e-10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].bound, curve[i].bound);
    EXPECT_GT(curve[i - 1].exceedance_prob, curve[i].exceedance_prob);
  }
}

TEST(Analysis, RenderReportMentionsVerdicts) {
  const auto xs = gumbel_like_sample(1000, 7);
  const std::string text = render_report(analyze(xs));
  EXPECT_NE(text.find("Ljung-Box"), std::string::npos);
  EXPECT_NE(text.find("KS 2-sample"), std::string::npos);
  EXPECT_NE(text.find("pWCET"), std::string::npos);
}

TEST(Analysis, BothTailModelsProduceConservativeBounds) {
  const auto xs = gumbel_like_sample(3000, 8);
  for (const auto tail :
       {stats::TailModel::kGumbelBlockMaxima, stats::TailModel::kGpdPot}) {
    AnalysisConfig cfg;
    cfg.tail = tail;
    const AnalysisReport report = analyze(xs, cfg);
    ASSERT_TRUE(report.mbpta_applicable());
    EXPECT_GE(report.pwcet(1e-10), report.sample.max);
  }
}

// --- end-to-end on the simulated platform -------------------------------------

// Execution times of one kernel run per random seed, on a given setup.
//
// The kernel walks a 20KB array - 640 lines against the 512-line L1 - and
// is measured on its *second* pass, when the time depends on which lines
// survived in L1.  Under modulo placement that survival pattern is fixed by
// the layout; under random placement it is a fresh random draw per seed.
// (A footprint that fits L1 would cost only compulsory misses and time
// would not depend on placement at all.)
std::vector<double> platform_sample(core::SetupKind kind, int runs,
                                    std::uint64_t master) {
  constexpr unsigned kWords = 5120;  // 20KB
  std::vector<double> times;
  times.reserve(runs);
  for (int r = 0; r < runs; ++r) {
    // Fresh machine per run: MBPTA's "new random cache layout on every
    // program run" protocol (paper section 2.1).
    core::Setup setup(kind, rng::derive_seed(master, r));
    setup.register_process(ProcId{1});
    setup.machine().set_process(ProcId{1});
    isa::Interpreter interp(setup.machine());
    interp.load_program(
        isa::assemble(isa::vector_sum_source(0x40000, kWords), 0x1000));
    (void)interp.run(0x1000);  // warm pass: compulsory misses
    const isa::RunResult result = interp.run(0x1000);
    times.push_back(static_cast<double>(result.cycles));
  }
  return times;
}

TEST(PlatformMbpta, RandomizedCachesPassIidAcrossSeeds) {
  // TSCache/MBPTACache: layouts are randomly drawn per run, so per-run
  // execution times are i.i.d. and MBPTA applies (paper section 6.2.2).
  const auto times = platform_sample(core::SetupKind::kTsCache, 400, 11);
  const AnalysisReport report = analyze(times);
  EXPECT_TRUE(report.iid.independence.passed(0.05))
      << "p=" << report.iid.independence.p_value;
  EXPECT_TRUE(report.iid.identical.passed(0.05))
      << "p=" << report.iid.identical.p_value;
  ASSERT_TRUE(report.mbpta_applicable());
  EXPECT_GE(report.pwcet(1e-10), report.sample.max);
}

TEST(PlatformMbpta, DeterministicCacheTimingIsLayoutLocked) {
  // On the deterministic cache every run of the same binary takes exactly
  // the same time - there is no distribution to analyze, and WCET estimates
  // are hostage to the memory layout (the mbpta-p1 composability argument).
  const auto times = platform_sample(core::SetupKind::kDeterministic, 50, 12);
  for (const double t : times) {
    EXPECT_DOUBLE_EQ(t, times.front());
  }
}

TEST(PlatformMbpta, RandomizedTimesActuallyVary) {
  const auto times = platform_sample(core::SetupKind::kTsCache, 50, 13);
  bool varies = false;
  for (const double t : times) varies = varies || t != times.front();
  EXPECT_TRUE(varies) << "random placement must produce timing variation";
}

}  // namespace
}  // namespace tsc::mbpta
