// Tests for the AUTOSAR model and seed-managing cyclic executive (os/).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "os/autosar.h"
#include "rng/rng.h"

namespace tsc::os {
namespace {

sim::Machine make_machine() {
  return sim::Machine(
      sim::arm920t_config(cache::MapperKind::kRandomModulo,
                          cache::MapperKind::kHashRp,
                          cache::ReplacementKind::kRandom),
      std::make_shared<rng::XorShift64Star>(5));
}

TEST(AutosarModel, HyperperiodIsLcmOfPeriods) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 1);
  EXPECT_EQ(exec.hyperperiod(), 20'000u);  // lcm(10ms, 20ms) at tick=1000
}

TEST(AutosarModel, Figure3JobCountsPerHyperperiod) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 1);
  exec.run(1);
  // R1, R2 run twice (10ms period in a 20ms hyperperiod); R3, R4, R5 once.
  std::map<std::string, int> counts;
  for (const JobRecord& job : exec.trace().jobs) ++counts[job.runnable];
  EXPECT_EQ(counts["R1"], 2);
  EXPECT_EQ(counts["R2"], 2);
  EXPECT_EQ(counts["R3"], 1);
  EXPECT_EQ(counts["R4"], 1);
  EXPECT_EQ(counts["R5"], 1);
}

TEST(AutosarModel, ReleaseOrderRespectsDependencies) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 1);
  exec.run(1);
  const auto& jobs = exec.trace().jobs;
  // At release 0 the declaration order is R1, R2, R3, R4, R5 (R1 -> R2
  // dependency of Fig. 3 preserved).
  ASSERT_GE(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].runnable, "R1");
  EXPECT_EQ(jobs[1].runnable, "R2");
  // Starts are monotone: single core, sequential execution.
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].start, jobs[i - 1].start);
  }
}

TEST(AutosarModel, JobsNeverStartBeforeTheirRelease) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 1);
  exec.run(2);
  // The first job of each hyperperiod has release 0 and anchors the
  // timeline for that hyperperiod.
  std::map<std::uint64_t, Cycles> base;
  for (const JobRecord& job : exec.trace().jobs) {
    const auto [it, inserted] = base.try_emplace(job.hyperperiod_index,
                                                 job.start);
    EXPECT_GE(job.start, it->second + job.release)
        << job.runnable << " in hyperperiod " << job.hyperperiod_index;
  }
}

TEST(AutosarModel, PerSwcPolicyGivesDistinctSeeds) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwc, 7);
  std::set<std::uint64_t> seeds;
  for (const char* swc : {"SWC1", "SWC2", "SWC3"}) {
    seeds.insert(exec.seed_of(swc).value);
  }
  EXPECT_EQ(seeds.size(), 3u) << "SWCs must not share seeds (section 5)";
}

TEST(AutosarModel, GlobalSharedPolicyGivesOneSeed) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kGlobalShared, 7);
  EXPECT_EQ(exec.seed_of("SWC1"), exec.seed_of("SWC2"));
  EXPECT_EQ(exec.seed_of("SWC2"), exec.seed_of("SWC3"));
}

TEST(AutosarModel, HyperperiodPolicyReseedsAndFlushes) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 7);
  exec.run(1);
  const Seed first = exec.seed_of("SWC2");
  EXPECT_EQ(exec.trace().flushes, 0u) << "no boundary crossed yet";
  exec.run(1);  // crosses one hyperperiod boundary
  EXPECT_NE(exec.seed_of("SWC2"), first);
  EXPECT_EQ(exec.trace().flushes, 1u)
      << "exactly one flush per hyperperiod boundary (section 5: cache "
         "flushing occurs only once per hyperperiod)";
}

TEST(AutosarModel, PerSwcPolicyKeepsSeedsAcrossHyperperiods) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwc, 7);
  exec.run(1);
  const Seed first = exec.seed_of("SWC2");
  exec.run(2);
  EXPECT_EQ(exec.seed_of("SWC2"), first);
  EXPECT_EQ(exec.trace().flushes, 0u);
}

TEST(AutosarModel, ContextSwitchesCountSwcTransitions) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 7);
  exec.run(1);
  // Job order: R1(S1) R2(S2) R3(S2) R4(S3) R5(S3) | R1(S1) R2(S2):
  // transitions S1->S2, S2->S3, S3->S1, S1->S2 = 4.
  EXPECT_EQ(exec.trace().context_switches, 4u);
}

TEST(AutosarModel, SeedChangesAreChargedToTheMachine) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 7);
  exec.run(2);
  // Boundary reseed: 3 SWCs + OS = 4 seed changes, each draining the
  // pipeline.
  EXPECT_EQ(exec.trace().seed_changes, 4u);
  EXPECT_EQ(m.stats().seed_changes, 4u);
  EXPECT_GE(m.stats().drains, 4u);
}

TEST(AutosarModel, JobsRunUnderTheirSwcProcess) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwc, 7);
  EXPECT_NE(exec.proc_of("SWC1"), exec.proc_of("SWC2"));
  EXPECT_NE(exec.proc_of("SWC1"), kOsProc) << "ProcId 0 is reserved for the OS";
  EXPECT_THROW((void)exec.proc_of("SWC9"), std::out_of_range);
}

TEST(AutosarModel, WorkloadsActuallyExecute) {
  auto m = make_machine();
  CyclicExecutive exec(m, figure3_app(1000), SeedPolicy::kPerSwcHyperperiod, 7);
  exec.run(1);
  EXPECT_GT(m.stats().loads, 0u);
  EXPECT_GT(m.stats().instructions, 0u);
  for (const JobRecord& job : exec.trace().jobs) {
    EXPECT_GT(job.duration, 0u) << job.runnable;
  }
}

TEST(AutosarModel, RejectsIllFormedApplications) {
  auto m = make_machine();
  EXPECT_THROW(CyclicExecutive(m, AppSpec{}, SeedPolicy::kNone, 1),
               std::invalid_argument);
  AppSpec no_runnables;
  no_runnables.swcs.push_back({"S", {}});
  EXPECT_THROW(CyclicExecutive(m, no_runnables, SeedPolicy::kNone, 1),
               std::invalid_argument);
  AppSpec zero_period;
  zero_period.swcs.push_back({"S", {{"R", 0, make_touch_workload(0, 0, 1, 1)}}});
  EXPECT_THROW(CyclicExecutive(m, zero_period, SeedPolicy::kNone, 1),
               std::invalid_argument);
}

TEST(AutosarModel, PolicyNames) {
  EXPECT_EQ(to_string(SeedPolicy::kNone), "none");
  EXPECT_EQ(to_string(SeedPolicy::kGlobalShared), "global-shared");
  EXPECT_EQ(to_string(SeedPolicy::kPerSwc), "per-swc");
  EXPECT_EQ(to_string(SeedPolicy::kPerSwcHyperperiod), "per-swc-hyperperiod");
}

}  // namespace
}  // namespace tsc::os
