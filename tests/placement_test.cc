// Property tests for the placement policies (cache/placement.h).
//
// These encode the paper's MBPTA compliance properties directly:
//   mbpta-p2 (Full Randomness)           - hashRP must satisfy, XOR-index must
//                                          violate (section 3, Aciiçmez analysis)
//   mbpta-p3 (Partial APOP-fixed)        - Random Modulo must satisfy
// plus uniformity of randomized placements and offset-bit independence.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/geometry.h"
#include "cache/placement.h"
#include "stats/tests.h"

namespace tsc::cache {
namespace {

const Geometry kL1 = l1_geometry_arm920t();  // 128 sets, 4 ways, 32B lines
const Geometry kL2 = l2_geometry_arm920t();  // 2048 sets

Seed seed_of(std::uint64_t v) { return Seed{v}; }

// ---------- geometry sanity -------------------------------------------------

TEST(Geometry, Arm920tShapes) {
  EXPECT_EQ(kL1.sets(), 128u);
  EXPECT_EQ(kL1.ways(), 4u);
  EXPECT_EQ(kL1.line_bytes(), 32u);
  EXPECT_EQ(kL1.index_bits(), 7u);
  EXPECT_EQ(kL1.offset_bits(), 5u);
  EXPECT_EQ(kL1.way_bytes(), 4096u);  // == 4KB page: RM-compatible
  EXPECT_EQ(kL2.sets(), 2048u);
  EXPECT_EQ(kL2.size_bytes(), 256u * 1024u);
}

TEST(Geometry, LineDecomposition) {
  const Addr a = 0x0002'0040;  // line 0x1002, index 2, tag 0x20
  EXPECT_EQ(kL1.line_addr(a), 0x1002u);
  EXPECT_EQ(kL1.line_base(a), 0x0002'0040u);
  EXPECT_EQ(kL1.line_base(a + 31), 0x0002'0040u);
  EXPECT_EQ(kL1.index_of_line(kL1.line_addr(a)), 2u);
  EXPECT_EQ(kL1.tag_of_line(kL1.line_addr(a)), 0x20u);
}

// ---------- shared properties across all placements -------------------------

struct PlacementCase {
  PlacementKind kind;
  bool randomized;
};

class EveryPlacement : public ::testing::TestWithParam<PlacementCase> {
 protected:
  std::unique_ptr<Placement> make(const Geometry& g = kL1) const {
    return make_placement(GetParam().kind, g);
  }
};

TEST_P(EveryPlacement, SetAlwaysInRange) {
  const auto p = make();
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Addr line = 0x4000 + i * 37;
    for (std::uint64_t s = 0; s < 8; ++s) {
      EXPECT_LT(p->set_index(line, seed_of(s * 0x123456789ULL)), kL1.sets());
    }
  }
}

TEST_P(EveryPlacement, DeterministicGivenAddressAndSeed) {
  const auto p = make();
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Addr line = 0x8000 + i * 101;
    const Seed s = seed_of(0xDEADBEEF + i);
    EXPECT_EQ(p->set_index(line, s), p->set_index(line, s));
  }
}

TEST_P(EveryPlacement, RandomizedFlagMatchesSeedSensitivity) {
  const auto p = make();
  EXPECT_EQ(p->randomized(), GetParam().randomized);
  // A randomized placement must move at least one of these lines across
  // seeds; a deterministic one must move none.
  bool moved = false;
  for (std::uint64_t i = 0; i < 64 && !moved; ++i) {
    const Addr line = 0x10000 + i;
    moved = p->set_index(line, seed_of(1)) != p->set_index(line, seed_of(2));
  }
  EXPECT_EQ(moved, GetParam().randomized);
}

std::string param_name(const std::string& raw) {
  std::string out;
  for (const char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) out += c;
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EveryPlacement,
    ::testing::Values(PlacementCase{PlacementKind::kModulo, false},
                      PlacementCase{PlacementKind::kXorIndex, true},
                      PlacementCase{PlacementKind::kHashRp, true},
                      PlacementCase{PlacementKind::kRandomModulo, true}),
    [](const auto& info) { return param_name(to_string(info.param.kind)); });

// ---------- modulo ----------------------------------------------------------

TEST(ModuloPlacementTest, SetEqualsIndexBits) {
  ModuloPlacement p(kL1);
  for (Addr line = 0; line < 1024; ++line) {
    EXPECT_EQ(p.set_index(line, seed_of(99)), line % 128);
  }
}

// ---------- XOR-index: the Aciiçmez flaw ------------------------------------

// Section 3: "if A and B have identical index bits [...] the set obtained is
// random, but identical for both addresses"; different index bits -> always
// different sets.  Conflict structure is seed-invariant: mbpta-p2 broken.
TEST(XorIndexPlacementTest, SameIndexAlwaysCollides) {
  XorIndexPlacement p(kL1);
  const Addr a = 0x1000;          // index = 0
  const Addr b = 0x1000 + 128;    // same index, different tag
  ASSERT_EQ(kL1.index_of_line(a), kL1.index_of_line(b));
  for (std::uint64_t s = 0; s < 256; ++s) {
    EXPECT_EQ(p.set_index(a, seed_of(s)), p.set_index(b, seed_of(s)))
        << "XOR-index must map same-index lines together under every seed";
  }
}

TEST(XorIndexPlacementTest, DifferentIndexNeverCollides) {
  XorIndexPlacement p(kL1);
  const Addr a = 0x1000;      // index 0
  const Addr b = 0x1001;      // index 1
  for (std::uint64_t s = 0; s < 256; ++s) {
    EXPECT_NE(p.set_index(a, seed_of(s)), p.set_index(b, seed_of(s)));
  }
}

TEST(XorIndexPlacementTest, ConflictStructureSeedInvariant) {
  // The general statement of the flaw: collide(A,B) does not depend on seed.
  XorIndexPlacement p(kL1);
  for (Addr a = 0x2000; a < 0x2040; ++a) {
    for (Addr b = 0x3000; b < 0x3008; ++b) {
      const bool collide_s1 =
          p.set_index(a, seed_of(111)) == p.set_index(b, seed_of(111));
      const bool collide_s2 =
          p.set_index(a, seed_of(0xFEF1F0)) == p.set_index(b, seed_of(0xFEF1F0));
      EXPECT_EQ(collide_s1, collide_s2);
    }
  }
}

// ---------- hashRP: Full Randomness (mbpta-p2) -------------------------------

TEST(HashRpPlacementTest, AddressMovesAcrossSeeds) {
  // mbpta-p2 (1): an address maps to different sets for different seeds and
  // repeats for the same seed.
  HashRpPlacement p(kL1);
  const Addr line = 0x12345;
  std::set<std::uint32_t> sets_seen;
  for (std::uint64_t s = 0; s < 64; ++s) {
    sets_seen.insert(p.set_index(line, seed_of(s * 7919)));
  }
  EXPECT_GT(sets_seen.size(), 32u) << "placement barely depends on the seed";
  EXPECT_EQ(p.set_index(line, seed_of(7919)), p.set_index(line, seed_of(7919)));
}

TEST(HashRpPlacementTest, CollisionsAreSeedDependent) {
  // mbpta-p2 (2): for some seeds A and B collide, for others they do not -
  // for pairs regardless of their modulo relation.
  HashRpPlacement p(kL1);
  int checked = 0;
  int with_both = 0;
  for (Addr a = 0x5000; a < 0x5010; ++a) {
    for (Addr b = 0x9000; b < 0x9010; ++b) {
      bool collide = false;
      bool split = false;
      for (std::uint64_t s = 0; s < 512; ++s) {
        if (p.set_index(a, seed_of(s * 104729)) ==
            p.set_index(b, seed_of(s * 104729))) {
          collide = true;
        } else {
          split = true;
        }
      }
      ++checked;
      if (collide && split) ++with_both;
    }
  }
  // With 128 sets and 512 seeds, P(no collision observed) per pair is tiny;
  // allow a few unlucky pairs.
  EXPECT_GT(with_both, checked * 9 / 10);
}

TEST(HashRpPlacementTest, PlacementUniformAcrossSeeds) {
  HashRpPlacement p(kL1);
  const Addr line = 0xCAFE5;
  std::vector<std::size_t> counts(kL1.sets(), 0);
  constexpr int kSeeds = 128 * 200;
  for (int s = 0; s < kSeeds; ++s) {
    ++counts[p.set_index(line, seed_of(0xABC000 + s))];
  }
  EXPECT_TRUE(stats::chi2_uniform(counts).passed(0.001));
}

TEST(HashRpPlacementTest, WorksOnL2Geometry) {
  // hashRP is the design for L2/L3 caches whose way size exceeds the page
  // size (section 4).
  HashRpPlacement p(kL2);
  std::set<std::uint32_t> sets_seen;
  for (std::uint64_t s = 0; s < 256; ++s) {
    sets_seen.insert(p.set_index(0x77777, seed_of(s * 31)));
  }
  EXPECT_GT(sets_seen.size(), 128u);
}

// ---------- Random Modulo: Partial APOP-fixed Randomness (mbpta-p3) ----------

TEST(RandomModuloPlacementTest, SamePageNeverCollides) {
  // mbpta-p3 (1): two lines in the same page (same tag when way size == page
  // size) must never share a set, under any seed.
  RandomModuloPlacement p(kL1);
  const Addr page_line0 = 0x40 << 7;  // tag 0x40, index 0
  for (std::uint64_t s = 0; s < 128; ++s) {
    std::set<std::uint32_t> sets_in_page;
    for (Addr i = 0; i < 128; ++i) {
      sets_in_page.insert(p.set_index(page_line0 + i, seed_of(s * 2654435761)));
    }
    ASSERT_EQ(sets_in_page.size(), 128u)
        << "seed " << s << ": same-page lines collided (mbpta-p3 violated)";
  }
}

TEST(RandomModuloPlacementTest, CrossPageCollisionsSeedDependent) {
  // mbpta-p3 (2): across pages, full-randomness principles apply.
  RandomModuloPlacement p(kL1);
  const Addr a = (0x10 << 7) | 5;  // page 0x10, index 5
  const Addr b = (0x33 << 7) | 5;  // page 0x33, same index
  bool collide = false;
  bool split = false;
  for (std::uint64_t s = 0; s < 2048 && !(collide && split); ++s) {
    if (p.set_index(a, seed_of(s * 48271)) ==
        p.set_index(b, seed_of(s * 48271))) {
      collide = true;
    } else {
      split = true;
    }
  }
  EXPECT_TRUE(collide) << "same-index cross-page lines never collide: "
                          "conflicts are not randomized";
  EXPECT_TRUE(split);
}

TEST(RandomModuloPlacementTest, PlacementUniformAcrossSeeds) {
  // Section 4: "With RM each address is placed in a random set with uniform
  // probability".
  RandomModuloPlacement p(kL1);
  const Addr line = (0x7A << 7) | 19;
  std::vector<std::size_t> counts(kL1.sets(), 0);
  constexpr int kSeeds = 128 * 200;
  for (int s = 0; s < kSeeds; ++s) {
    ++counts[p.set_index(line, seed_of(0x1234560 + s))];
  }
  EXPECT_TRUE(stats::chi2_uniform(counts).passed(0.001));
}

TEST(RandomModuloPlacementTest, BijectionWithinPageExhaustive) {
  // For a fixed seed, the page's 128 lines must occupy all 128 sets.
  RandomModuloPlacement p(kL1);
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xFFFFFFFFULL}) {
    std::vector<bool> used(kL1.sets(), false);
    for (Addr i = 0; i < 128; ++i) {
      const std::uint32_t s = p.set_index((0x5 << 7) | i, seed_of(seed));
      EXPECT_FALSE(used[s]);
      used[s] = true;
    }
  }
}

TEST(RandomModuloPlacementTest, MemoizationTransparent) {
  // Re-querying mixed (seed, tag) pairs must return identical results:
  // the permutation memo may only accelerate, never change, placements.
  RandomModuloPlacement p(kL1);
  std::vector<std::uint32_t> first;
  for (std::uint64_t i = 0; i < 512; ++i) {
    first.push_back(p.set_index(0x9000 + i * 7, seed_of(i % 13)));
  }
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 512; ++i) {
      EXPECT_EQ(p.set_index(0x9000 + i * 7, seed_of(i % 13)), first[i]);
    }
  }
}

// ---------- offset independence (mbpta-p2 preamble) ---------------------------

TEST(PlacementOffsets, OffsetBitsNeverChangeTheSet) {
  // "two different addresses A and B, i.e. they differ at least in one bit
  // (excluding offset bits within the cache line)" - placement operates on
  // line addresses; bytes within a line share the set by construction.
  for (const PlacementKind kind :
       {PlacementKind::kModulo, PlacementKind::kXorIndex,
        PlacementKind::kHashRp, PlacementKind::kRandomModulo}) {
    const auto p = make_placement(kind, kL1);
    const Addr byte_addr = 0x4567A0;
    const Addr line = kL1.line_addr(byte_addr);
    for (Addr off = 0; off < kL1.line_bytes(); ++off) {
      EXPECT_EQ(kL1.line_addr(byte_addr + off), line) << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace tsc::cache
