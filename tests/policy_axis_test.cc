// Policy-axis enumeration contract: every PlacementPolicy registered on
// the axis must
//   (a) be enumerated by all_policies() (which is what both campaign
//       experiments iterate to build their cell grids) with a unique,
//       stable name and an in-range enum value (kPolicyCount sizes the
//       MachinePool slot array),
//   (b) appear as rows of BOTH committed campaign fixtures - the
//       attack_matrix and pwcet_matrix goldens are pinned byte-identical
//       to live runs by golden_test.cc, so a policy present there is
//       provably in the live cell grids too,
//   (c) have a working reference-cache model for every cache level of its
//       platform, checked by a short differential stream per level.
// A future policy added to the enum but not to all_policies(), or with a
// config the oracle cannot model, or with stale fixtures, fails here
// instead of silently dropping out of the campaigns.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "cache/builder.h"
#include "core/policy.h"
#include "reference_cache.h"
#include "rng/rng.h"
#include "runner/machine_pool.h"

namespace tsc::core {
namespace {

#ifndef TSC_SOURCE_DIR
#error "TSC_SOURCE_DIR must point at the repository root"
#endif

std::string read_fixture(const std::string& relative) {
  const std::string path = std::string(TSC_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(PolicyAxis, EnumerationIsCompleteAndStable) {
  const std::vector<PlacementPolicy>& policies = all_policies();
  ASSERT_EQ(policies.size(), kPolicyCount);
  // The deterministic baseline leads (pwcet_matrix normalizes overhead
  // against platform 0).
  EXPECT_EQ(policies.front(), PlacementPolicy::kModulo);
  std::set<std::string> names;
  std::set<std::size_t> values;
  for (const PlacementPolicy policy : policies) {
    const std::string name = to_string(policy);
    EXPECT_NE(name, "?") << "policy missing a to_string case";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    const auto value = static_cast<std::size_t>(policy);
    EXPECT_LT(value, kPolicyCount) << "enum value outside the slot range";
    EXPECT_TRUE(values.insert(value).second);
  }
}

TEST(PolicyAxis, EveryPolicyIsARowOfBothCampaignFixtures) {
  const std::string attack =
      read_fixture("tests/golden/attack_matrix_s1200_ss400.json");
  const std::string pwcet =
      read_fixture("tests/golden/pwcet_matrix_s240_ss80.json");
  ASSERT_FALSE(attack.empty());
  ASSERT_FALSE(pwcet.empty());
  for (const PlacementPolicy policy : all_policies()) {
    const std::string key = "\"policy\":\"" + to_string(policy) + "\"";
    EXPECT_NE(attack.find(key), std::string::npos)
        << to_string(policy) << " missing from the attack_matrix fixture "
        << "(stale golden? regenerate per golden_test.cc)";
    EXPECT_NE(pwcet.find(key), std::string::npos)
        << to_string(policy) << " missing from the pwcet_matrix fixture "
        << "(stale golden? regenerate per golden_test.cc)";
  }
}

/// Short differential replay of one level's CacheSpec: production cache vs
/// the naive reference model, same-seeded separate rngs, exact equality.
/// (The exhaustive streams live in differential_test.cc; this guards that
/// each POLICY's concrete per-level configuration stays inside what the
/// oracle models.)
void check_reference_model(const cache::CacheSpec& spec, std::uint64_t seed) {
  auto fast_rng = std::make_shared<rng::XorShift64Star>(seed);
  auto ref_rng = std::make_shared<rng::XorShift64Star>(seed);
  const std::unique_ptr<cache::Cache> fast =
      cache::build_cache(spec, fast_rng);
  cache::ReferenceCache ref(spec, ref_rng);

  const Addr size = spec.config.geometry.size_bytes();
  const std::uint32_t line = spec.config.geometry.line_bytes();
  for (const ProcId proc : {kMatrixVictim, kMatrixAttacker}) {
    const Seed s{rng::derive_seed(seed, 0xA7C0 + proc.value)};
    fast->set_seed(proc, s);
    ref.set_seed(proc, s);
  }

  rng::XorShift64Star script(rng::derive_seed(seed, 0xD1FF));
  for (std::size_t i = 0; i < 20'000; ++i) {
    const ProcId proc = script.next_bool() ? kMatrixVictim : kMatrixAttacker;
    const Addr region = script.next_bool() ? size / 2 : 4 * size;
    const Addr addr = script.next_below(region / line) * line;
    const bool write = script.next_below(100) < 30;
    const cache::AccessResult got = fast->access(proc, addr, write);
    const cache::ReferenceCache::Result want = ref.access(proc, addr, write);
    ASSERT_EQ(got.hit, want.hit) << "access " << i;
    ASSERT_EQ(got.set, want.set) << "access " << i;
    ASSERT_EQ(got.allocated, want.allocated) << "access " << i;
    ASSERT_EQ(got.evicted, want.evicted) << "access " << i;
    ASSERT_EQ(got.writeback, want.writeback) << "access " << i;
    ASSERT_EQ(got.evicted_line, want.evicted_line) << "access " << i;
  }
  const cache::CacheStats got = fast->stats();
  const cache::ReferenceCache::Stats& want = ref.stats();
  EXPECT_EQ(got.accesses, want.accesses);
  EXPECT_EQ(got.hits, want.hits);
  EXPECT_EQ(got.evictions, want.evictions);
  EXPECT_EQ(got.writebacks, want.writebacks);
  EXPECT_EQ(got.contention_evictions, want.contention_evictions);
  EXPECT_EQ(got.ttl_expirations, want.ttl_expirations);
  EXPECT_EQ(fast->valid_lines(), ref.valid_lines());
}

TEST(PolicyAxis, EveryPolicyLevelHasAReferenceCacheModel) {
  for (const PlacementPolicy policy : all_policies()) {
    const sim::HierarchyConfig config = policy_hierarchy_config(policy);
    ASSERT_TRUE(config.l2.has_value()) << to_string(policy);
    std::uint64_t which = 0;
    for (const cache::CacheSpec& spec :
         {config.l1i, config.l1d, *config.l2}) {
      SCOPED_TRACE(to_string(policy) + " " + spec.describe());
      check_reference_model(
          spec, rng::derive_seed(0xA015'0000 + which++,
                                 static_cast<std::uint64_t>(policy)));
    }
  }
}

TEST(PolicyAxis, MachinePoolHasASlotForEveryPolicyCell) {
  // Leasing every (policy, partitioned) cell exercises the pool's slot
  // indexing; an axis grown without resizing the pool throws here.
  for (const PlacementPolicy policy : all_policies()) {
    for (const bool partitioned : {false, true}) {
      const runner::PooledMachine lease =
          runner::MachinePool::local().policy_machine(policy, 0x5107,
                                                      partitioned);
      EXPECT_GE(lease.machine.hierarchy().l1d().geometry().ways(), 1u);
    }
  }
}

}  // namespace
}  // namespace tsc::core
