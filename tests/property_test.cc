// Cross-cutting property suites (TEST_P) exercising cache correctness and
// the paper's invariants across geometries, designs, and replacement
// policies - the sweeps that single-example unit tests cannot cover.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cache/builder.h"
#include "stats/tests.h"

namespace tsc::cache {
namespace {

constexpr ProcId kP1{1};

std::shared_ptr<rng::Rng> test_rng(std::uint64_t seed = 99) {
  return std::make_shared<rng::XorShift64Star>(seed);
}

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return s;
}

// ---------- every (geometry x mapper x replacement) combination ---------------

using Combo = std::tuple<Geometry, MapperKind, ReplacementKind>;

class EveryCacheCombo : public ::testing::TestWithParam<Combo> {
 protected:
  std::unique_ptr<Cache> make(std::uint64_t seed = 7) const {
    const auto& [geometry, mapper, replacement] = GetParam();
    CacheSpec spec;
    spec.config.geometry = geometry;
    spec.mapper = mapper;
    spec.replacement = replacement;
    return build_cache(spec, test_rng(seed));
  }
};

TEST_P(EveryCacheCombo, SecondAccessToSameLineAlwaysHits) {
  auto c = make();
  for (Addr a = 0; a < 64 * 1024; a += 4093) {  // prime stride: scattered
    (void)c->access(kP1, a, false);
    EXPECT_TRUE(c->access(kP1, a, false).hit) << "addr " << a;
  }
}

TEST_P(EveryCacheCombo, ValidLinesNeverExceedCapacity) {
  auto c = make();
  const Geometry& g = c->geometry();
  for (Addr a = 0; a < 4 * g.size_bytes(); a += g.line_bytes()) {
    (void)c->access(kP1, a, false);
  }
  EXPECT_LE(c->valid_lines(),
            static_cast<std::uint64_t>(g.sets()) * g.ways());
}

TEST_P(EveryCacheCombo, StatsIdentitiesHold) {
  auto c = make();
  rng::XorShift64Star addr_rng(31);
  for (int i = 0; i < 5000; ++i) {
    (void)c->access(kP1, addr_rng.next_below(256 * 1024), (i % 3) == 0);
  }
  const CacheStats& s = c->stats();
  EXPECT_EQ(s.accesses, s.hits + s.misses);
  EXPECT_LE(s.writebacks, s.evictions + s.flushed_lines);
  EXPECT_LE(c->valid_lines(),
            static_cast<std::uint64_t>(c->geometry().sets()) *
                c->geometry().ways());
}

TEST_P(EveryCacheCombo, FlushEmptiesEverything) {
  auto c = make();
  for (Addr a = 0; a < 32 * 1024; a += 64) (void)c->access(kP1, a, true);
  (void)c->flush();
  EXPECT_EQ(c->valid_lines(), 0u);
  EXPECT_FALSE(c->access(kP1, 0, false).hit);
}

TEST_P(EveryCacheCombo, DeterministicReplayGivenSameSeed) {
  auto a = make(123);
  auto b = make(123);
  rng::XorShift64Star addr_a(5);
  rng::XorShift64Star addr_b(5);
  for (int i = 0; i < 3000; ++i) {
    const AccessResult ra = a->access(kP1, addr_a.next_below(128 * 1024), false);
    const AccessResult rb = b->access(kP1, addr_b.next_below(128 * 1024), false);
    ASSERT_EQ(ra.hit, rb.hit) << "diverged at access " << i;
    ASSERT_EQ(ra.set, rb.set) << "diverged at access " << i;
  }
}

const Geometry kGeometries[] = {
    Geometry(1024, 2, 32),       // 16 sets
    Geometry(16 * 1024, 4, 32),  // the paper's L1
    Geometry(8 * 1024, 8, 64),   // wide-line, high-assoc
    Geometry(4096, 1, 32),       // direct-mapped
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, EveryCacheCombo,
    ::testing::Combine(
        ::testing::ValuesIn(kGeometries),
        ::testing::Values(MapperKind::kModulo, MapperKind::kXorIndex,
                          MapperKind::kHashRp, MapperKind::kRandomModulo,
                          MapperKind::kRpCache),
        ::testing::Values(ReplacementKind::kLru, ReplacementKind::kRandom,
                          ReplacementKind::kPlru)),
    [](const auto& info) {
      const Geometry& geometry = std::get<0>(info.param);
      return sanitize(std::to_string(geometry.size_bytes() / 1024) + "KB_" +
                      std::to_string(geometry.ways()) + "w_" +
                      to_string(std::get<1>(info.param)) + "_" +
                      to_string(std::get<2>(info.param)));
    });

// ---------- placement invariants on the L2 geometry ---------------------------

class RandomPlacementsOnL2 : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(RandomPlacementsOnL2, UniformAcrossSeedsOnL2) {
  const Geometry l2 = l2_geometry_arm920t();
  const auto p = make_placement(GetParam(), l2);
  std::vector<std::size_t> counts(l2.sets(), 0);
  const int draws = static_cast<int>(l2.sets()) * 60;
  for (int s = 0; s < draws; ++s) {
    ++counts[p->set_index(0xABCDE, Seed{0x5000 + static_cast<std::uint64_t>(s)})];
  }
  EXPECT_TRUE(stats::chi2_uniform(counts).passed(0.001));
}

TEST_P(RandomPlacementsOnL2, SeedZeroIsNotSpecial) {
  // A seed of zero must still scatter addresses (hardware reset value).
  const Geometry l2 = l2_geometry_arm920t();
  const auto p = make_placement(GetParam(), l2);
  std::set<std::uint32_t> sets;
  for (Addr line = 0; line < 4096; line += 64) {
    sets.insert(p->set_index(line, Seed{0}));
  }
  EXPECT_GT(sets.size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, RandomPlacementsOnL2,
                         ::testing::Values(PlacementKind::kHashRp,
                                           PlacementKind::kRandomModulo),
                         [](const auto& info) {
                           return sanitize(to_string(info.param));
                         });

// ---------- random replacement is actually random ------------------------------

TEST(RandomnessProperties, RandomReplacementVictimsSpreadOverWays) {
  CacheSpec spec;
  spec.config.geometry = Geometry(2048, 4, 32);  // 16 sets
  spec.mapper = MapperKind::kModulo;
  spec.replacement = ReplacementKind::kRandom;
  auto c = build_cache(spec, test_rng(17));
  // Fill set 0, then stream conflicting lines; track which resident lines
  // survive - under random replacement every way must get evicted sometime.
  std::set<Addr> evicted;
  for (std::uint64_t t = 0; t < 200; ++t) {
    const AccessResult r = c->access(kP1, t * 16 * 32, false);
    if (r.evicted) evicted.insert(r.evicted_line);
  }
  EXPECT_GT(evicted.size(), 100u) << "evictions must churn through lines";
}

TEST(RandomnessProperties, RpCacheDisturbanceHitsManySets) {
  CacheSpec spec;
  spec.config.geometry = Geometry(4096, 1, 32);  // 128 sets, direct-mapped
  spec.mapper = MapperKind::kRpCache;
  auto c = build_cache(spec, test_rng(19));
  // Fill everything as P1, then contend as P2: the secure rule must evict
  // random lines all over the cache, not in one place.
  for (Addr a = 0; a < 4096; a += 32) (void)c->access(kP1, a, false);
  std::set<std::uint32_t> disturbed;
  for (std::uint64_t t = 0; t < 300; ++t) {
    const AccessResult r = c->access(ProcId{2}, 0x100000 + t * 32, false);
    if (r.evicted) {
      disturbed.insert(static_cast<std::uint32_t>(r.evicted_line % 128));
    }
  }
  EXPECT_GT(disturbed.size(), 60u)
      << "contention evictions must be spatially random (that is the "
         "RPCache defence)";
}

}  // namespace
}  // namespace tsc::cache
