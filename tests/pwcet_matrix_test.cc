// Tests for the pWCET-matrix building blocks: the shared sharded
// time-collection path (worker-count and shard-size invariance), and the
// policy-machine timing behaviour the matrix verdicts rest on - the
// deterministic platform must be layout-locked (constant per-run times)
// while the MBPTA-style randomized platforms produce analyzable variation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/policy.h"
#include "isa/interpreter.h"
#include "isa/kernels.h"
#include "mbpta/analysis.h"
#include "rng/rng.h"
#include "runner/experiment.h"
#include "runner/sharded.h"
#include "stats/tests.h"

namespace tsc::runner {
namespace {

/// The matrix's per-run protocol: fresh machine, fresh layout, timed second
/// pass of a 20KB vector sum.
double kernel_time(core::PlacementPolicy policy, std::uint64_t cell_seed,
                   std::size_t run) {
  const auto machine = core::build_policy_machine(
      policy, rng::derive_seed(cell_seed, run), /*partitioned=*/false);
  machine->set_process(core::kMatrixVictim);
  isa::Interpreter interp(*machine);
  interp.load_program(
      isa::assemble(isa::vector_sum_source(0x40000, 5120), 0x1000));
  (void)interp.run(0x1000);
  return static_cast<double>(interp.run(0x1000).cycles);
}

TEST(RunShardedTimes, InvariantToShardSizeAndWorkerCount) {
  // measure() is a pure function of the run index, so every decomposition
  // must concatenate to the same vector, bit for bit.
  const auto measure = [](std::size_t r) {
    return static_cast<double>((r * 2654435761u) % 1000);
  };
  const std::vector<double> reference = run_sharded_times(103, 103, 1, measure);
  ASSERT_EQ(reference.size(), 103u);
  for (const std::size_t shard_size : {1u, 7u, 32u, 64u, 200u}) {
    for (const unsigned workers : {1u, 2u, 5u}) {
      EXPECT_EQ(run_sharded_times(103, shard_size, workers, measure),
                reference)
          << "shard_size=" << shard_size << " workers=" << workers;
    }
  }
}

TEST(RunShardedTimes, HandlesEmptyAndTinyBudgets) {
  const auto measure = [](std::size_t r) { return static_cast<double>(r); };
  EXPECT_TRUE(run_sharded_times(0, 10, 2, measure).empty());
  EXPECT_EQ(run_sharded_times(1, 0, 2, measure),  // shard size clamps to 1
            std::vector<double>{0.0});
}

TEST(PwcetMatrixProtocol, ModuloPlatformIsLayoutLocked) {
  // Same binary, deterministic placement: every run of the protocol takes
  // exactly the same time regardless of the per-run seed - the
  // "degenerate" verdict of the matrix, and the paper's composability
  // argument against deterministic caches.
  const double first = kernel_time(core::PlacementPolicy::kModulo, 99, 0);
  for (std::size_t r = 1; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(kernel_time(core::PlacementPolicy::kModulo, 99, r),
                     first);
  }
}

TEST(PwcetMatrixProtocol, RpCachePermutationPreservesConflicts) {
  // RPCache permutes SET LABELS per process; lines that conflicted under
  // modulo still conflict after relabelling, so single-process timing stays
  // constant run to run.  (Its security value is against a co-located
  // attacker, not timing variability - exactly what the tradeoff table
  // records.)
  const double first = kernel_time(core::PlacementPolicy::kRpCache, 17, 0);
  for (std::size_t r = 1; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(kernel_time(core::PlacementPolicy::kRpCache, 17, r),
                     first);
  }
}

TEST(PwcetMatrixProtocol, RandomizedPlatformsPassTheIidGate) {
  for (const core::PlacementPolicy policy :
       {core::PlacementPolicy::kHashRp, core::PlacementPolicy::kRandomModulo}) {
    ASSERT_TRUE(core::randomized(policy));
    std::vector<double> times;
    for (std::size_t r = 0; r < 120; ++r) {
      times.push_back(kernel_time(policy, 7, r));
    }
    bool varies = false;
    for (const double t : times) varies = varies || t != times.front();
    ASSERT_TRUE(varies) << core::to_string(policy);
    const stats::IidVerdict v = stats::iid_check(times, 20);
    EXPECT_TRUE(v.independence.passed(0.01))
        << core::to_string(policy) << " p=" << v.independence.p_value;
    EXPECT_TRUE(v.identical.passed(0.01))
        << core::to_string(policy) << " p=" << v.identical.p_value;
  }
}

TEST(PwcetMatrixProtocol, RandomizedBoundIsStableAcrossPrefixes) {
  std::vector<double> times;
  for (std::size_t r = 0; r < 200; ++r) {
    times.push_back(kernel_time(core::PlacementPolicy::kHashRp, 7, r));
  }
  mbpta::AnalysisConfig cfg;
  cfg.min_runs = 100;
  cfg.block = 10;
  cfg.tail = stats::TailModel::kGumbelBlockMaxima;
  const mbpta::ConvergenceCurve curve =
      mbpta::pwcet_convergence(times, cfg, 1e-10, 6, 0.10);
  ASSERT_GE(curve.points.size(), 3u);
  EXPECT_GT(curve.final_bound(), *std::max_element(times.begin(), times.end()));
}

TEST(PwcetExceedance, WorkerCountInvariantAndWellFormed) {
#ifndef NDEBUG
  // The floor is 120 runs x 70 cells, twice; minutes under Debug/ASan.
  // The Release CI jobs carry this contract.
  GTEST_SKIP() << "pwcet_exceedance determinism runs in Release builds only";
#endif
  const Experiment* experiment = find_experiment("pwcet_exceedance");
  ASSERT_NE(experiment, nullptr);
  RunOptions options;
  options.samples = 120;
  options.shard_size = 40;
  options.workers = 1;
  const std::string w1 = experiment->run(options).dump(-1);
  options.workers = 3;
  EXPECT_EQ(experiment->run(options).dump(-1), w1)
      << "exceedance JSON must be worker-count invariant";
  // The plotting contract: empirical tails everywhere, fitted + extrapolated
  // curves on at least one applicable cell, both tail models present.
  EXPECT_NE(w1.find("\"empirical\""), std::string::npos);
  EXPECT_NE(w1.find("\"verdict\":\"applicable\""), std::string::npos);
  EXPECT_NE(w1.find("\"verdict\":\"degenerate\""), std::string::npos);
  EXPECT_NE(w1.find("\"fitted\""), std::string::npos);
  EXPECT_NE(w1.find("\"extrapolated\""), std::string::npos);
  EXPECT_NE(w1.find("\"gumbel_block_maxima\""), std::string::npos);
  EXPECT_NE(w1.find("\"gpd_pot\""), std::string::npos);
}

TEST(PolicyHelpers, RandomizedClassifiesDeterministicPlatforms) {
  // The two platforms with no timing randomness to model: modulo (one
  // fixed layout) and timecache (quantization, layout-independent cost).
  EXPECT_FALSE(core::randomized(core::PlacementPolicy::kModulo));
  EXPECT_FALSE(core::randomized(core::PlacementPolicy::kTimeCache));
  EXPECT_TRUE(core::randomized(core::PlacementPolicy::kHashRp));
  EXPECT_TRUE(core::randomized(core::PlacementPolicy::kRpCache));
  EXPECT_TRUE(core::randomized(core::PlacementPolicy::kRandomModulo));
  EXPECT_TRUE(core::randomized(core::PlacementPolicy::kClepsydra));
  EXPECT_TRUE(core::randomized(core::PlacementPolicy::kRandomAndSafe));
}

}  // namespace
}  // namespace tsc::runner
