// A deliberately naive, policy-faithful reference model of the cache - the
// differential oracle for the optimized hierarchy.
//
// The production Cache (src/cache/cache.h) earns its speed from specialized
// (mapping x replacement x way-count) access templates, SoA line storage,
// resolved mapping contexts, SWAR/SSE scans and fused replacement updates.
// Every one of those optimizations is a chance for a silent semantic drift
// that per-case unit tests would miss.  This model is the opposite design
// on purpose:
//
//   * line state is a std::map of sets to plain Entry structs (no packing,
//     no SoA, no SIMD);
//   * set indices come from the VIRTUAL mapper path (IndexMapper::map ->
//     Placement::set_index), which tests/fastpath_test.cc pins against
//     independently restated placement formulas - so oracle and fast path
//     share no resolved-context machinery;
//   * replacement policies are re-implemented naively from their
//     definitions (LRU as monotonic age stamps, PLRU as an explicit
//     midpoint-interval tree walk, FIFO as a cursor, NMRU per its two-line
//     definition);
//   * the RPCache secure-contention rule, way partitions with their
//     shared round-robin cursors, write-back/write-allocate variants and
//     flush bookkeeping follow the documented semantics line by line.
//
// Random decisions (random replacement, NMRU, contention evictions) draw
// from an Rng the caller supplies; feeding the reference and the production
// cache generators seeded identically replays the exact decision sequence,
// so the comparison is exact equality of every AccessResult field and of
// the final statistics - not a statistical similarity.
//
// Deliberately unsupported (out of the differential matrix): random-fill
// caches (random_fill_window > 0).
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/builder.h"
#include "cache/mapper.h"
#include "cache/placement.h"
#include "rng/rng.h"

namespace tsc::cache {

class ReferenceCache {
 public:
  /// Mirrors cache::AccessResult field for field.
  struct Result {
    bool hit = false;
    bool writeback = false;
    bool allocated = true;
    bool evicted = false;
    std::uint32_t set = 0;
    Addr evicted_line = 0;
  };

  /// Mirrors the cache::CacheStats counters the model maintains.
  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t contention_evictions = 0;
    std::uint64_t flushes = 0;
    std::uint64_t flushed_lines = 0;
  };

  ReferenceCache(const CacheSpec& spec, std::shared_ptr<rng::Rng> rng)
      : spec_(spec),
        geo_(spec.config.geometry),
        ways_(spec.config.geometry.ways()),
        mapper_(make_reference_mapper(spec)),
        rng_(std::move(rng)) {
    assert(spec.config.random_fill_window == 0 &&
           "the reference model does not cover random-fill caches");
    secure_contention_ = mapper_->secure_contention_policy();
  }

  Result access(ProcId proc, Addr addr, bool write) {
    const Addr line = geo_.line_addr(addr);
    const std::uint32_t set = mapper_->map(line, proc);
    ++stats_.accesses;

    Result result;
    result.set = set;
    std::vector<Entry>& entries = set_entries(set);

    // Lookup: first matching valid way, in way order.
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (entries[w].valid && entries[w].line == line) {
        ++stats_.hits;
        result.hit = true;
        touch(set, w);
        if (write && spec_.config.write_back) entries[w].dirty = true;
        return result;
      }
    }

    // Write miss without write-allocate bypasses the cache.
    if (write && !spec_.config.write_allocate) {
      result.allocated = false;
      return result;
    }

    // Way range: the process's partition if one is installed, else all ways.
    std::uint32_t first = 0;
    std::uint32_t count = ways_;
    bool partitioned = false;
    if (const auto it = partitions_.find(proc.value);
        it != partitions_.end()) {
      first = it->second.first;
      count = it->second.second;
      partitioned = true;
    }

    // Prefer the lowest-numbered invalid way in range.
    std::uint32_t way = ways_;
    for (std::uint32_t w = first; w < first + count; ++w) {
      if (!entries[w].valid) {
        way = w;
        break;
      }
    }

    if (way == ways_) {  // range full: pick a victim
      if (partitioned) {
        // Inside a partition the global replacement metadata cannot be
        // trusted; the cache round-robins through the range with one
        // cursor per set, shared by every partitioned process.
        way = first + (partition_rr_[set]++ % count);
      } else {
        way = pick_victim(set);
      }
      if (secure_contention_ && entries[way].valid &&
          entries[way].owner != proc.value) {
        // RPCache rule: evicting another process's line would leak its set
        // usage; disturb a random (set, way) instead and do not allocate.
        ++stats_.contention_evictions;
        const auto rset =
            static_cast<std::uint32_t>(rng_->next_below(geo_.sets()));
        const auto rway = static_cast<std::uint32_t>(rng_->next_below(ways_));
        std::vector<Entry>& rentries = set_entries(rset);
        if (rentries[rway].valid) evict_entry(rentries[rway], result);
        result.allocated = false;
        return result;
      }
      evict_entry(entries[way], result);
    }

    entries[way].line = line;
    entries[way].valid = true;
    entries[way].dirty = write && spec_.config.write_back;
    entries[way].owner = proc.value;
    fill(set, way);
    return result;
  }

  void set_seed(ProcId proc, Seed seed) { mapper_->set_seed(proc, seed); }

  void set_way_partition(ProcId proc, std::uint32_t first_way,
                         std::uint32_t way_count) {
    assert(way_count >= 1 && first_way + way_count <= ways_);
    partitions_[proc.value] = {first_way, way_count};
  }

  std::uint64_t flush() {
    ++stats_.flushes;
    std::uint64_t count = 0;
    for (auto& [set, entries] : lines_) {
      for (Entry& e : entries) {
        if (e.valid) {
          ++count;
          if (e.dirty) ++stats_.writebacks;
        }
        e = Entry{};
      }
    }
    stats_.flushed_lines += count;
    // Replacement history is forgotten; the partition cursors are NOT (they
    // are allocation state, not replacement metadata - same as the cache).
    lru_age_.clear();
    lru_tick_ = 0;
    fifo_cursor_.clear();
    plru_tree_.clear();
    nmru_mru_.clear();
    return count;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] std::uint64_t valid_lines() const {
    std::uint64_t n = 0;
    for (const auto& [set, entries] : lines_) {
      for (const Entry& e : entries) n += e.valid ? 1 : 0;
    }
    return n;
  }

 private:
  struct Entry {
    Addr line = 0;
    bool valid = false;
    bool dirty = false;
    std::uint32_t owner = 0;
  };

  /// The same mapper construction the builder performs, restated here so
  /// the oracle does not depend on build_cache's wiring.
  static std::unique_ptr<IndexMapper> make_reference_mapper(
      const CacheSpec& spec) {
    const Geometry& g = spec.config.geometry;
    switch (spec.mapper) {
      case MapperKind::kModulo:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kModulo, g), spec.default_seed);
      case MapperKind::kXorIndex:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kXorIndex, g), spec.default_seed);
      case MapperKind::kHashRp:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kHashRp, g), spec.default_seed);
      case MapperKind::kRandomModulo:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kRandomModulo, g),
            spec.default_seed);
      case MapperKind::kRpCache:
        return std::make_unique<RpCacheMapper>(g, spec.default_seed);
    }
    return nullptr;
  }

  std::vector<Entry>& set_entries(std::uint32_t set) {
    auto it = lines_.find(set);
    if (it == lines_.end()) {
      it = lines_.emplace(set, std::vector<Entry>(ways_)).first;
    }
    return it->second;
  }

  void evict_entry(Entry& e, Result& result) {
    ++stats_.evictions;
    if (e.dirty) {
      ++stats_.writebacks;
      result.writeback = true;
    }
    result.evicted = true;
    result.evicted_line = e.line;
    e = Entry{};
  }

  // --- naive replacement policies ------------------------------------------

  void touch(std::uint32_t set, std::uint32_t way) {
    switch (spec_.replacement) {
      case ReplacementKind::kLru:
        lru_age_[set].resize(ways_, 0);
        lru_age_[set][way] = ++lru_tick_;
        break;
      case ReplacementKind::kPlru:
        plru_touch(set, way);
        break;
      case ReplacementKind::kNmru:
        nmru_mru_[set] = way;
        break;
      case ReplacementKind::kFifo:
      case ReplacementKind::kRandom:
        break;  // hits do not reorder
    }
  }

  void fill(std::uint32_t set, std::uint32_t way) {
    switch (spec_.replacement) {
      case ReplacementKind::kFifo:
        fifo_cursor_[set] = (way + 1) % ways_;
        break;
      case ReplacementKind::kRandom:
        break;  // no metadata
      default:
        touch(set, way);
        break;
    }
  }

  std::uint32_t pick_victim(std::uint32_t set) {
    switch (spec_.replacement) {
      case ReplacementKind::kLru: {
        // Least recently used = smallest age stamp (every way of a full
        // set has been touched, so stamps exist and are unique).
        const std::vector<std::uint64_t>& age = lru_age_[set];
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways_; ++w) {
          if (age[w] < age[victim]) victim = w;
        }
        return victim;
      }
      case ReplacementKind::kFifo:
        return fifo_cursor_[set];
      case ReplacementKind::kRandom:
        return static_cast<std::uint32_t>(rng_->next_below(ways_));
      case ReplacementKind::kPlru:
        return plru_victim(set);
      case ReplacementKind::kNmru: {
        // Random way excluding the most recently used one.
        if (ways_ == 1) return 0;
        const std::uint32_t mru = nmru_mru_[set];
        const auto pick =
            static_cast<std::uint32_t>(rng_->next_below(ways_ - 1));
        return pick >= mru ? pick + 1 : pick;
      }
    }
    return 0;
  }

  /// Tree-PLRU over explicit [lo, hi) intervals: node k covers an interval,
  /// its flag points at the NEXT VICTIM side (0 = left).  Touching a way
  /// points every node on its root path away from it.
  void plru_touch(std::uint32_t set, std::uint32_t way) {
    std::vector<std::uint8_t>& tree = plru_tree_[set];
    tree.resize(ways_ == 0 ? 0 : ways_ - 1, 0);
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = ways_;
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      const bool went_right = way >= mid;
      tree[node] = went_right ? 0 : 1;
      node = 2 * node + (went_right ? 2 : 1);
      if (went_right) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }

  std::uint32_t plru_victim(std::uint32_t set) {
    std::vector<std::uint8_t>& tree = plru_tree_[set];
    tree.resize(ways_ == 0 ? 0 : ways_ - 1, 0);
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = ways_;
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      const bool go_left = tree[node] == 0;
      node = 2 * node + (go_left ? 1 : 2);
      if (go_left) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return lo;
  }

  CacheSpec spec_;
  Geometry geo_;
  std::uint32_t ways_;
  std::unique_ptr<IndexMapper> mapper_;
  std::shared_ptr<rng::Rng> rng_;
  bool secure_contention_ = false;
  Stats stats_;

  std::map<std::uint32_t, std::vector<Entry>> lines_;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
      partitions_;                                   ///< proc -> (first, count)
  std::map<std::uint32_t, std::uint32_t> partition_rr_;  ///< per-set cursor

  std::map<std::uint32_t, std::vector<std::uint64_t>> lru_age_;
  std::uint64_t lru_tick_ = 0;
  std::map<std::uint32_t, std::uint32_t> fifo_cursor_;
  std::map<std::uint32_t, std::vector<std::uint8_t>> plru_tree_;
  std::map<std::uint32_t, std::uint32_t> nmru_mru_;
};

}  // namespace tsc::cache
