// A deliberately naive, policy-faithful reference model of the cache - the
// differential oracle for the optimized hierarchy.
//
// The production Cache (src/cache/cache.h) earns its speed from specialized
// (mapping x replacement x way-count) access templates, SoA line storage,
// resolved mapping contexts, SWAR/SSE scans and fused replacement updates.
// Every one of those optimizations is a chance for a silent semantic drift
// that per-case unit tests would miss.  This model is the opposite design
// on purpose:
//
//   * line state is a std::map of sets to plain Entry structs (no packing,
//     no SoA, no SIMD);
//   * set indices come from the VIRTUAL mapper path (IndexMapper::map ->
//     Placement::set_index), which tests/fastpath_test.cc pins against
//     independently restated placement formulas - so oracle and fast path
//     share no resolved-context machinery;
//   * replacement policies are re-implemented naively from their
//     definitions (LRU as monotonic age stamps, PLRU as an explicit
//     midpoint-interval tree walk, FIFO as a cursor, NMRU per its two-line
//     definition);
//   * the RPCache secure-contention rule, way partitions with their
//     shared round-robin cursors, write-back/write-allocate variants and
//     flush bookkeeping follow the documented semantics line by line;
//   * the random-fill path (Random-and-Safe / Liu & Lee) and the
//     ClepsydraCache TTL mechanism (per-line lifetimes, lazy expiry of the
//     probed set, refresh on hit) are restated from their documented
//     semantics, consuming rng draws at exactly the production points: the
//     random neighbour line before any victim draw, the TTL draw after the
//     fill's victim/contention draws.
//
// Random decisions (random replacement, NMRU, contention evictions,
// random-fill targets, TTL lifetimes) draw from an Rng the caller
// supplies; feeding the reference and the production cache generators
// seeded identically replays the exact decision sequence, so the
// comparison is exact equality of every AccessResult field and of the
// final statistics - not a statistical similarity.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/builder.h"
#include "cache/mapper.h"
#include "cache/placement.h"
#include "rng/rng.h"

namespace tsc::cache {

class ReferenceCache {
 public:
  /// Mirrors cache::AccessResult field for field.
  struct Result {
    bool hit = false;
    bool writeback = false;
    bool allocated = true;
    bool evicted = false;
    std::uint32_t set = 0;
    Addr evicted_line = 0;
  };

  /// Mirrors the cache::CacheStats counters the model maintains.
  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t contention_evictions = 0;
    std::uint64_t ttl_expirations = 0;
    std::uint64_t flushes = 0;
    std::uint64_t flushed_lines = 0;
    std::uint64_t line_flushes = 0;
    std::uint64_t line_flush_hits = 0;
  };

  ReferenceCache(const CacheSpec& spec, std::shared_ptr<rng::Rng> rng)
      : spec_(spec),
        geo_(spec.config.geometry),
        ways_(spec.config.geometry.ways()),
        mapper_(make_reference_mapper(spec)),
        rng_(std::move(rng)) {
    secure_contention_ = mapper_->secure_contention_policy();
    ttl_enabled_ = spec.config.ttl_max > 0;
  }

  Result access(ProcId proc, Addr addr, bool write) {
    const Addr line = geo_.line_addr(addr);
    const std::uint32_t set = mapper_->map(line, proc);
    ++stats_.accesses;

    Result result;
    result.set = set;
    std::vector<Entry>& entries = set_entries(set);

    // TTL (ClepsydraCache): tick the access clock, then lazily reclaim
    // expired lines of the probed set in way order, before the lookup -
    // a dead line must not hit.  Expirations are their own statistic (a
    // dirty one still writes back); the demand access's Result is
    // untouched.
    if (ttl_enabled_) {
      ++ttl_clock_;
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (entries[w].valid && entries[w].expiry <= ttl_clock_) {
          ++stats_.ttl_expirations;
          if (entries[w].dirty) ++stats_.writebacks;
          entries[w] = Entry{};
        }
      }
    }

    // Lookup: first matching valid way, in way order.  A TTL hit refreshes
    // the line's expiry by its own stored lifetime (no rng draw).
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (entries[w].valid && entries[w].line == (line & kTagMask)) {
        ++stats_.hits;
        result.hit = true;
        touch(set, w);
        if (write && spec_.config.write_back) entries[w].dirty = true;
        if (ttl_enabled_) entries[w].expiry = ttl_clock_ + entries[w].ttl;
        return result;
      }
    }

    // Write miss without write-allocate bypasses the cache.
    if (write && !spec_.config.write_allocate) {
      result.allocated = false;
      return result;
    }

    // Random-fill (Random-and-Safe / Liu & Lee): a read miss is served
    // around the cache; a uniformly drawn line within +/- window of the
    // demanded one is filled instead, unless already resident.  The
    // neighbour draw comes FIRST (before any victim draw the fill may
    // make), matching the production order.
    if (spec_.config.random_fill_window > 0 && !write) {
      const std::uint32_t window = spec_.config.random_fill_window;
      const std::uint64_t span = 2ULL * window + 1;
      const Addr fill_line = line - window + rng_->next_below(span);
      const std::uint32_t fill_set = mapper_->map(fill_line, proc);
      if (!contains_line(fill_line, fill_set)) {
        allocate(proc, fill_line, fill_set, /*dirty=*/false, result);
      }
      result.allocated = false;
      return result;
    }

    allocate(proc, line, set, write && spec_.config.write_back, result);
    return result;
  }

  void set_seed(ProcId proc, Seed seed) { mapper_->set_seed(proc, seed); }

  void set_way_partition(ProcId proc, std::uint32_t first_way,
                         std::uint32_t way_count) {
    assert(way_count >= 1 && first_way + way_count <= ways_);
    partitions_[proc.value] = {first_way, way_count};
  }

  /// Mirrors cache::Cache::flush_line field for field.
  struct FlushLineResult {
    bool present = false;
    bool writeback = false;
    std::uint32_t set = 0;
  };

  /// Single-line flush, restated from the documented semantics: the
  /// FLUSHER's mapping context resolves the set (clflush with a shared
  /// line - the flusher addresses the same placement the victim's fills
  /// used because they share the process context); the TTL clock ticks
  /// and the probed set is lazily reclaimed FIRST, exactly as a demand
  /// access would (a dead line must not read back as present); the flush
  /// is not an access (no accesses/hits/miss accounting) and touches no
  /// replacement metadata - fills prefer invalid ways, so the stale
  /// history self-heals on the next allocation, way for way like the
  /// production cache.
  FlushLineResult flush_line(ProcId proc, Addr addr) {
    const Addr line = geo_.line_addr(addr);
    const std::uint32_t set = mapper_->map(line, proc);
    std::vector<Entry>& entries = set_entries(set);
    if (ttl_enabled_) {
      ++ttl_clock_;
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (entries[w].valid && entries[w].expiry <= ttl_clock_) {
          ++stats_.ttl_expirations;
          if (entries[w].dirty) ++stats_.writebacks;
          entries[w] = Entry{};
        }
      }
    }
    ++stats_.line_flushes;
    FlushLineResult result;
    result.set = set;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (entries[w].valid && entries[w].line == (line & kTagMask)) {
        result.present = true;
        ++stats_.line_flush_hits;
        ++stats_.flushed_lines;
        if (entries[w].dirty) {
          ++stats_.writebacks;
          result.writeback = true;
        }
        entries[w] = Entry{};
        break;
      }
    }
    return result;
  }

  std::uint64_t flush() {
    ++stats_.flushes;
    std::uint64_t count = 0;
    for (auto& [set, entries] : lines_) {
      for (Entry& e : entries) {
        if (e.valid) {
          ++count;
          if (e.dirty) ++stats_.writebacks;
        }
        e = Entry{};
      }
    }
    stats_.flushed_lines += count;
    // Replacement history is forgotten; the partition cursors are NOT (they
    // are allocation state, not replacement metadata - same as the cache).
    lru_age_.clear();
    lru_tick_ = 0;
    fifo_cursor_.clear();
    plru_tree_.clear();
    nmru_mru_.clear();
    return count;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] std::uint64_t valid_lines() const {
    std::uint64_t n = 0;
    for (const auto& [set, entries] : lines_) {
      for (const Entry& e : entries) n += e.valid ? 1 : 0;
    }
    return n;
  }

 private:
  /// Production tags pack lines as (line << 1) | valid: the top line bit is
  /// not part of the tag identity, so lines aliasing in their low 63 bits
  /// match the same tag and evicted_line comes back masked.  Set mapping
  /// still sees the full 64-bit line.  Only the random-fill neighbour draw
  /// can wrap below zero and produce such lines; the model reproduces the
  /// aliasing exactly rather than widening the tag.
  static constexpr Addr kTagMask = (Addr{1} << 63) - 1;

  struct Entry {
    Addr line = 0;
    bool valid = false;
    bool dirty = false;
    std::uint32_t owner = 0;
    std::uint64_t expiry = 0;  ///< TTL caches: clock value at which it dies
    std::uint32_t ttl = 0;     ///< TTL caches: drawn lifetime (for refresh)
  };

  /// The miss-side allocation: partition-aware way choice, the RPCache
  /// contention rule, eviction bookkeeping, install, replacement fill and
  /// (on TTL caches) the lifetime draw - shared by the demand path and the
  /// random-fill path, exactly as the production fill_impl is.
  void allocate(ProcId proc, Addr line, std::uint32_t set, bool dirty,
                Result& result) {
    std::vector<Entry>& entries = set_entries(set);

    // Way range: the process's partition if one is installed, else all ways.
    std::uint32_t first = 0;
    std::uint32_t count = ways_;
    bool partitioned = false;
    if (const auto it = partitions_.find(proc.value);
        it != partitions_.end()) {
      first = it->second.first;
      count = it->second.second;
      partitioned = true;
    }

    // Prefer the lowest-numbered invalid way in range.
    std::uint32_t way = ways_;
    for (std::uint32_t w = first; w < first + count; ++w) {
      if (!entries[w].valid) {
        way = w;
        break;
      }
    }

    if (way == ways_) {  // range full: pick a victim
      if (partitioned) {
        // Inside a partition the global replacement metadata cannot be
        // trusted; the cache round-robins through the range with one
        // cursor per set, shared by every partitioned process.
        way = first + (partition_rr_[set]++ % count);
      } else {
        way = pick_victim(set);
      }
      if (secure_contention_ && entries[way].valid &&
          entries[way].owner != proc.value) {
        // RPCache rule: evicting another process's line would leak its set
        // usage; disturb a random (set, way) instead and do not allocate.
        ++stats_.contention_evictions;
        const auto rset =
            static_cast<std::uint32_t>(rng_->next_below(geo_.sets()));
        const auto rway = static_cast<std::uint32_t>(rng_->next_below(ways_));
        std::vector<Entry>& rentries = set_entries(rset);
        if (rentries[rway].valid) evict_entry(rentries[rway], result);
        result.allocated = false;
        return;
      }
      evict_entry(entries[way], result);
    }

    entries[way].line = line & kTagMask;
    entries[way].valid = true;
    entries[way].dirty = dirty;
    entries[way].owner = proc.value;
    fill(set, way);
    if (ttl_enabled_) {
      // TTL draw last, after any victim/contention draw of this fill.
      const std::uint64_t span =
          std::uint64_t{spec_.config.ttl_max} - spec_.config.ttl_min + 1;
      const auto ttl = static_cast<std::uint32_t>(spec_.config.ttl_min +
                                                  rng_->next_below(span));
      entries[way].ttl = ttl;
      entries[way].expiry = ttl_clock_ + ttl;
    }
  }

  [[nodiscard]] bool contains_line(Addr line, std::uint32_t set) {
    const std::vector<Entry>& entries = set_entries(set);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (entries[w].valid && entries[w].line == (line & kTagMask)) {
        return true;
      }
    }
    return false;
  }

  /// The same mapper construction the builder performs, restated here so
  /// the oracle does not depend on build_cache's wiring.
  static std::unique_ptr<IndexMapper> make_reference_mapper(
      const CacheSpec& spec) {
    const Geometry& g = spec.config.geometry;
    switch (spec.mapper) {
      case MapperKind::kModulo:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kModulo, g), spec.default_seed);
      case MapperKind::kXorIndex:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kXorIndex, g), spec.default_seed);
      case MapperKind::kHashRp:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kHashRp, g), spec.default_seed);
      case MapperKind::kRandomModulo:
        return std::make_unique<SeededMapper>(
            make_placement(PlacementKind::kRandomModulo, g),
            spec.default_seed);
      case MapperKind::kRpCache:
        return std::make_unique<RpCacheMapper>(g, spec.default_seed);
    }
    return nullptr;
  }

  std::vector<Entry>& set_entries(std::uint32_t set) {
    auto it = lines_.find(set);
    if (it == lines_.end()) {
      it = lines_.emplace(set, std::vector<Entry>(ways_)).first;
    }
    return it->second;
  }

  void evict_entry(Entry& e, Result& result) {
    ++stats_.evictions;
    if (e.dirty) {
      ++stats_.writebacks;
      result.writeback = true;
    }
    result.evicted = true;
    result.evicted_line = e.line;
    e = Entry{};
  }

  // --- naive replacement policies ------------------------------------------

  void touch(std::uint32_t set, std::uint32_t way) {
    switch (spec_.replacement) {
      case ReplacementKind::kLru:
        lru_age_[set].resize(ways_, 0);
        lru_age_[set][way] = ++lru_tick_;
        break;
      case ReplacementKind::kPlru:
        plru_touch(set, way);
        break;
      case ReplacementKind::kNmru:
        nmru_mru_[set] = way;
        break;
      case ReplacementKind::kFifo:
      case ReplacementKind::kRandom:
        break;  // hits do not reorder
    }
  }

  void fill(std::uint32_t set, std::uint32_t way) {
    switch (spec_.replacement) {
      case ReplacementKind::kFifo:
        fifo_cursor_[set] = (way + 1) % ways_;
        break;
      case ReplacementKind::kRandom:
        break;  // no metadata
      default:
        touch(set, way);
        break;
    }
  }

  std::uint32_t pick_victim(std::uint32_t set) {
    switch (spec_.replacement) {
      case ReplacementKind::kLru: {
        // Least recently used = smallest age stamp (every way of a full
        // set has been touched, so stamps exist and are unique).
        const std::vector<std::uint64_t>& age = lru_age_[set];
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways_; ++w) {
          if (age[w] < age[victim]) victim = w;
        }
        return victim;
      }
      case ReplacementKind::kFifo:
        return fifo_cursor_[set];
      case ReplacementKind::kRandom:
        return static_cast<std::uint32_t>(rng_->next_below(ways_));
      case ReplacementKind::kPlru:
        return plru_victim(set);
      case ReplacementKind::kNmru: {
        // Random way excluding the most recently used one.
        if (ways_ == 1) return 0;
        const std::uint32_t mru = nmru_mru_[set];
        const auto pick =
            static_cast<std::uint32_t>(rng_->next_below(ways_ - 1));
        return pick >= mru ? pick + 1 : pick;
      }
    }
    return 0;
  }

  /// Tree-PLRU over explicit [lo, hi) intervals: node k covers an interval,
  /// its flag points at the NEXT VICTIM side (0 = left).  Touching a way
  /// points every node on its root path away from it.
  void plru_touch(std::uint32_t set, std::uint32_t way) {
    std::vector<std::uint8_t>& tree = plru_tree_[set];
    tree.resize(ways_ == 0 ? 0 : ways_ - 1, 0);
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = ways_;
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      const bool went_right = way >= mid;
      tree[node] = went_right ? 0 : 1;
      node = 2 * node + (went_right ? 2 : 1);
      if (went_right) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }

  std::uint32_t plru_victim(std::uint32_t set) {
    std::vector<std::uint8_t>& tree = plru_tree_[set];
    tree.resize(ways_ == 0 ? 0 : ways_ - 1, 0);
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = ways_;
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      const bool go_left = tree[node] == 0;
      node = 2 * node + (go_left ? 1 : 2);
      if (go_left) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return lo;
  }

  CacheSpec spec_;
  Geometry geo_;
  std::uint32_t ways_;
  std::unique_ptr<IndexMapper> mapper_;
  std::shared_ptr<rng::Rng> rng_;
  bool secure_contention_ = false;
  bool ttl_enabled_ = false;
  std::uint64_t ttl_clock_ = 0;  ///< survives flush(), like the production clock
  Stats stats_;

  std::map<std::uint32_t, std::vector<Entry>> lines_;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
      partitions_;                                   ///< proc -> (first, count)
  std::map<std::uint32_t, std::uint32_t> partition_rr_;  ///< per-set cursor

  std::map<std::uint32_t, std::vector<std::uint64_t>> lru_age_;
  std::uint64_t lru_tick_ = 0;
  std::map<std::uint32_t, std::uint32_t> fifo_cursor_;
  std::map<std::uint32_t, std::vector<std::uint8_t>> plru_tree_;
  std::map<std::uint32_t, std::uint32_t> nmru_mru_;
};

}  // namespace tsc::cache
