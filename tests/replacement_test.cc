// Tests for the replacement policies (cache/replacement.h).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "cache/replacement.h"

namespace tsc::cache {
namespace {

std::shared_ptr<rng::Rng> test_rng(std::uint64_t seed = 1234) {
  return std::make_shared<rng::XorShift64Star>(seed);
}

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  auto p = make_replacement(ReplacementKind::kLru, 1, 4);
  p->fill(0, 0);
  p->fill(0, 1);
  p->fill(0, 2);
  p->fill(0, 3);
  // Access order now 3 (MRU), 2, 1, 0 (LRU).
  EXPECT_EQ(p->victim(0), 0u);
  p->touch(0, 0);  // 0 becomes MRU; LRU is now 1.
  EXPECT_EQ(p->victim(0), 1u);
  p->touch(0, 1);
  p->touch(0, 2);
  EXPECT_EQ(p->victim(0), 3u);
}

TEST(LruPolicy, SetsAreIndependent) {
  auto p = make_replacement(ReplacementKind::kLru, 2, 2);
  p->fill(0, 0);
  p->fill(0, 1);
  p->fill(1, 1);
  p->fill(1, 0);
  EXPECT_EQ(p->victim(0), 0u);
  EXPECT_EQ(p->victim(1), 1u);
}

TEST(LruPolicy, ResetForgetsHistory) {
  auto p = make_replacement(ReplacementKind::kLru, 1, 4);
  p->fill(0, 2);
  p->touch(0, 0);
  p->reset();
  // After reset the policy must still return a valid way.
  EXPECT_LT(p->victim(0), 4u);
}

TEST(FifoPolicy, EvictsInFillOrderIgnoringTouches) {
  auto p = make_replacement(ReplacementKind::kFifo, 1, 4);
  p->fill(0, 0);
  p->fill(0, 1);
  p->fill(0, 2);
  p->fill(0, 3);
  EXPECT_EQ(p->victim(0), 0u);
  p->touch(0, 0);  // FIFO ignores hits
  EXPECT_EQ(p->victim(0), 0u);
  p->fill(0, 0);   // replace way 0; oldest is now way 1
  EXPECT_EQ(p->victim(0), 1u);
}

TEST(RandomPolicy, VictimCoversAllWaysUniformly) {
  auto p = make_replacement(ReplacementKind::kRandom, 1, 4, test_rng());
  std::map<std::uint32_t, int> histogram;
  constexpr int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) ++histogram[p->victim(0)];
  ASSERT_EQ(histogram.size(), 4u);
  for (const auto& [way, count] : histogram) {
    EXPECT_GT(count, kTrials / 4 * 80 / 100) << "way " << way;
    EXPECT_LT(count, kTrials / 4 * 120 / 100) << "way " << way;
  }
}

TEST(RandomPolicy, TouchAndFillAreNoOps) {
  auto p = make_replacement(ReplacementKind::kRandom, 1, 2, test_rng(7));
  auto q = make_replacement(ReplacementKind::kRandom, 1, 2, test_rng(7));
  p->touch(0, 1);
  p->fill(0, 0);
  // Same RNG seed, same draw sequence regardless of touches.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p->victim(0), q->victim(0));
}

TEST(PlruPolicy, VictimIsNeverTheJustTouchedWay) {
  auto p = make_replacement(ReplacementKind::kPlru, 1, 8);
  for (std::uint32_t w = 0; w < 8; ++w) p->fill(0, w);
  for (std::uint32_t w = 0; w < 8; ++w) {
    p->touch(0, w);
    EXPECT_NE(p->victim(0), w) << "PLRU evicted the most recent way";
  }
}

TEST(PlruPolicy, TreePointsAwayFromRecentAccesses) {
  auto p = make_replacement(ReplacementKind::kPlru, 1, 4);
  p->touch(0, 0);
  p->touch(0, 1);
  // Both recent accesses are in the left half; victim must be on the right.
  const std::uint32_t v = p->victim(0);
  EXPECT_TRUE(v == 2 || v == 3) << "victim=" << v;
}

TEST(NmruPolicy, NeverEvictsMostRecentlyUsed) {
  auto p = make_replacement(ReplacementKind::kNmru, 1, 4, test_rng(55));
  p->touch(0, 2);
  for (int i = 0; i < 500; ++i) EXPECT_NE(p->victim(0), 2u);
  p->touch(0, 0);
  for (int i = 0; i < 500; ++i) EXPECT_NE(p->victim(0), 0u);
}

TEST(NmruPolicy, SingleWayDegeneratesToWayZero) {
  auto p = make_replacement(ReplacementKind::kNmru, 1, 1, test_rng(5));
  EXPECT_EQ(p->victim(0), 0u);
}

class EveryPolicy : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(EveryPolicy, VictimAlwaysInRange) {
  const std::uint32_t ways = 4;
  auto p = make_replacement(GetParam(), 8, ways, test_rng(99));
  for (std::uint32_t set = 0; set < 8; ++set) {
    for (int i = 0; i < 100; ++i) {
      p->touch(set, static_cast<std::uint32_t>(i % ways));
      EXPECT_LT(p->victim(set), ways);
    }
  }
}

TEST_P(EveryPolicy, NameIsNonEmpty) {
  auto p = make_replacement(GetParam(), 1, 2, test_rng());
  EXPECT_FALSE(p->name().empty());
  EXPECT_EQ(p->name(), to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Kinds, EveryPolicy,
                         ::testing::Values(ReplacementKind::kLru,
                                           ReplacementKind::kFifo,
                                           ReplacementKind::kRandom,
                                           ReplacementKind::kPlru,
                                           ReplacementKind::kNmru),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace tsc::cache
