// Unit and statistical tests for the rng library.
//
// The paper relies on "low-overhead PRNG that provide enough quality in the
// sequences produced to avoid correlations" (section 2.1, ref [3]).  These
// tests pin down determinism, seed sensitivity, unbiasedness of next_below,
// and basic distribution quality for every generator.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "rng/rng.h"
#include "stats/tests.h"

namespace tsc::rng {
namespace {

using Factory = std::unique_ptr<Rng> (*)(std::uint64_t);

std::unique_ptr<Rng> make_splitmix(std::uint64_t s) {
  return std::make_unique<SplitMix64>(s);
}
std::unique_ptr<Rng> make_xorshift(std::uint64_t s) {
  return std::make_unique<XorShift64Star>(s);
}
std::unique_ptr<Rng> make_pcg(std::uint64_t s) {
  return std::make_unique<Pcg32>(s);
}
std::unique_ptr<Rng> make_lfsr(std::uint64_t s) {
  return std::make_unique<Lfsr16>(s);
}

class EveryRng : public ::testing::TestWithParam<Factory> {};

TEST_P(EveryRng, SameSeedSameSequence) {
  auto a = GetParam()(12345);
  auto b = GetParam()(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a->next_u64(), b->next_u64()) << "diverged at step " << i;
  }
}

TEST_P(EveryRng, DifferentSeedDifferentSequence) {
  auto a = GetParam()(1);
  auto b = GetParam()(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a->next_u64() != b->next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST_P(EveryRng, NextBelowStaysInRange) {
  auto g = GetParam()(99);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(g->next_below(bound), bound);
    }
  }
}

TEST_P(EveryRng, NextDoubleInUnitInterval) {
  auto g = GetParam()(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = g->next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// next_below over a non-power-of-two bound must stay uniform (replacement-way
// bias would itself be a timing side channel).  The bare Lfsr16 is excluded:
// see Lfsr16.ModBiasDisqualifiesItForVictimSelection below.
TEST_P(EveryRng, NextBelowUniformChiSquare) {
  auto g = GetParam()(2024);
  if (g->name() == "lfsr16") GTEST_SKIP() << "known-biased, tested separately";
  constexpr std::uint64_t kBound = 5;
  std::vector<std::size_t> counts(kBound, 0);
  for (int i = 0; i < 50000; ++i) ++counts[g->next_below(kBound)];
  const auto result = stats::chi2_uniform(counts);
  EXPECT_TRUE(result.passed(0.001))
      << "chi2=" << result.statistic << " p=" << result.p_value;
}

TEST_P(EveryRng, BitBalance) {
  auto g = GetParam()(31337);
  // Across 4096 draws each of the 64 bit positions should be ~50% ones.
  std::vector<int> ones(64, 0);
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = g->next_u64();
    for (int b = 0; b < 64; ++b) ones[b] += static_cast<int>((v >> b) & 1);
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(ones[b], kDraws * 40 / 100) << "bit " << b << " mostly zero";
    EXPECT_LT(ones[b], kDraws * 60 / 100) << "bit " << b << " mostly one";
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, EveryRng,
                         ::testing::Values(make_splitmix, make_xorshift,
                                           make_pcg, make_lfsr));

TEST(Lfsr16, MaximalPeriod) {
  // Taps 16,15,13,4 give the full period 2^16 - 1 (zero state excluded).
  Lfsr16 g(0xACE1);
  const std::uint16_t first = g.step();
  std::uint32_t period = 1;
  while (g.step() != first) {
    ++period;
    ASSERT_LE(period, 70000u) << "period overflow: taps are wrong";
  }
  EXPECT_EQ(period, 65535u);
}

TEST(Lfsr16, ModBiasDisqualifiesItForVictimSelection) {
  // The paper (section 2.1, ref [3]) requires PRNGs with "enough quality in
  // the sequences produced to avoid correlations".  A bare 16-bit LFSR does
  // NOT meet that bar: its linear structure leaves a measurable bias in
  // small non-power-of-two draws.  This test documents the deficiency that
  // justifies the stronger mixed generators used for replacement decisions.
  Lfsr16 g(2024);
  std::vector<std::size_t> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[g.next_below(5)];
  const auto result = stats::chi2_uniform(counts);
  EXPECT_FALSE(result.passed(0.001))
      << "if this starts passing, the LFSR model changed; revisit rng docs";
}

TEST(Lfsr16, ZeroSeedRemapped) {
  Lfsr16 g(0);  // all-zero LFSR state would be a fixed point
  EXPECT_NE(g.next_u64(), 0u);
}

TEST(XorShift64Star, ZeroSeedRemapped) {
  XorShift64Star g(0);
  EXPECT_NE(g.next_u64(), 0u);
}

TEST(DeriveSeed, ChildrenDiffer) {
  std::set<std::uint64_t> children;
  for (std::uint64_t tag = 0; tag < 1000; ++tag) {
    children.insert(derive_seed(42, tag));
  }
  EXPECT_EQ(children.size(), 1000u) << "tag collisions in seed derivation";
}

TEST(DeriveSeed, MasterMatters) {
  EXPECT_NE(derive_seed(1, 7), derive_seed(2, 7));
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(99, 3), derive_seed(99, 3));
}

TEST(MakeRng, FactoryProducesRequestedKind) {
  EXPECT_EQ(make_rng(Kind::kSplitMix64, 1)->name(), "splitmix64");
  EXPECT_EQ(make_rng(Kind::kXorShift64Star, 1)->name(), "xorshift64star");
  EXPECT_EQ(make_rng(Kind::kPcg32, 1)->name(), "pcg32");
  EXPECT_EQ(make_rng(Kind::kLfsr16, 1)->name(), "lfsr16");
}

TEST(MakeRng, NextBelowPowerOfTwoFastPath) {
  auto g = make_rng(Kind::kPcg32, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(g->next_below(128), 128u);  // the paper's L1 set count
  }
}

}  // namespace
}  // namespace tsc::rng
