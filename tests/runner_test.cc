// Tests for the sharded campaign engine: thread-pool semantics (ordering,
// exception propagation), deterministic shard planning, the bit-identity of
// merged campaign results across worker counts, and the JSON writer the CI
// determinism checks depend on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/json.h"
#include "runner/sharded.h"
#include "runner/thread_pool.h"

namespace tsc::runner {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const std::vector<int> out =
        parallel_map(pool, 64, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 64u) << "workers=" << workers;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  auto ok = pool.submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPoolTest, ParallelMapRethrowsLowestIndexException) {
  ThreadPool pool(4);
  try {
    (void)parallel_map(pool, 16, [](std::size_t i) -> int {
      if (i == 3) throw std::runtime_error("first");
      if (i == 11) throw std::logic_error("second");
      return static_cast<int>(i);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

// Shutdown semantics under throwing tasks - the fault-tolerant campaign
// runner leans on all three properties: queued tasks still drain, no future
// is left unready (abandoned), and destruction cannot deadlock.
TEST(ThreadPoolTest, DestructorDrainsQueueEvenWhenTasksThrow) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&ran, i] {
        if (i % 8 == 3) throw std::runtime_error("injected");
        ++ran;
      }));
    }
    // The destructor runs with most tasks still queued; it must execute
    // them all (returning from this scope at all also proves no deadlock).
  }
  int threw = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "destructor abandoned a queued task's future";
    try {
      future.get();
    } catch (const std::runtime_error&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw, 8);
  EXPECT_EQ(ran.load(), 56);
}

TEST(ThreadPoolTest, DestructionSurvivesEveryTaskThrowing) {
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(
          pool.submit([]() -> void { throw std::logic_error("all fail"); }));
    }
  }
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_THROW(future.get(), std::logic_error);
  }
}

TEST(ShardPlanTest, SplitsSampleBudgetExactly) {
  core::CampaignConfig base;
  base.samples = 10'500;
  const auto shards = plan_shards(base, 4000);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].samples, 4000u);
  EXPECT_EQ(shards[1].samples, 4000u);
  EXPECT_EQ(shards[2].samples, 2500u);
}

TEST(ShardPlanTest, ShardsShareTheDeploymentAndSplitOnlyInputs) {
  core::CampaignConfig base;
  base.samples = 100'000;
  base.master_seed = 2018;
  const auto a = plan_shards(base, 25'000);
  const auto b = plan_shards(base, 25'000);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The deployment - master seed (hence layouts, per-process cache
    // seeds, the victim key) and the victim binary's noise pattern - is
    // shared by every shard; rewriting it per shard would destroy the
    // stable-layout leaks (MBPTACache/RPCache) fig5 exists to measure.
    EXPECT_EQ(a[i].master_seed, base.master_seed);
    EXPECT_EQ(a[i].noise_pattern_seed, base.noise_pattern_seed);
    // What does vary: the plaintext stream and the job window.
    EXPECT_EQ(a[i].plaintext_stream, b[i].plaintext_stream)
        << "plan must be pure";
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].plaintext_stream, a[j].plaintext_stream);
    }
    EXPECT_EQ(a[i].job_offset, i * 25'000);
  }
  EXPECT_EQ(a[0].plaintext_stream, base.plaintext_stream)
      << "shard 0 must reproduce the unsharded campaign";
}

TEST(ShardPlanTest, PlaintextStreamSchemeIsSplittable) {
  EXPECT_EQ(shard_plaintext_stream(1, 0), 1u);
  EXPECT_NE(shard_plaintext_stream(1, 1), shard_plaintext_stream(1, 2));
  EXPECT_NE(shard_plaintext_stream(1, 1), shard_plaintext_stream(2, 1));
  EXPECT_EQ(shard_plaintext_stream(42, 7), shard_plaintext_stream(42, 7));
}

// A single-shard run must reproduce core::run_bernstein_campaign exactly -
// the engine adds concurrency, never new semantics.  kMbptaCache exercises
// the shared-layout derivation path, the one a seed-rewriting planner
// would corrupt.
TEST(ShardedCampaignTest, SingleShardMatchesLegacyCampaignBitExactly) {
  core::CampaignConfig legacy_cfg;
  legacy_cfg.samples = 1500;
  legacy_cfg.warmup = 64;
  const core::CampaignResult legacy =
      core::run_bernstein_campaign(core::SetupKind::kMbptaCache, legacy_cfg);

  ShardedConfig config;
  config.base = legacy_cfg;
  config.shard_size = 1500;  // one shard
  config.workers = 2;
  const ShardedCampaignResult sharded =
      run_sharded_bernstein(core::SetupKind::kMbptaCache, config);

  ASSERT_EQ(sharded.shard_count, 1u);
  EXPECT_EQ(sharded.victim.key, legacy.victim.key);
  EXPECT_EQ(sharded.victim.profile.samples(), legacy.victim.profile.samples());
  EXPECT_EQ(sharded.victim.profile.global_mean(),
            legacy.victim.profile.global_mean());
  EXPECT_EQ(sharded.attacker.profile.global_mean(),
            legacy.attacker.profile.global_mean());
  for (int pos = 0; pos < 16; ++pos) {
    for (int v = 0; v < 256; ++v) {
      EXPECT_EQ(sharded.victim.profile.cell_mean(pos, v),
                legacy.victim.profile.cell_mean(pos, v));
      EXPECT_EQ(
          sharded.attack.bytes[static_cast<std::size_t>(pos)]
              .correlation[static_cast<std::size_t>(v)],
          legacy.attack.bytes[static_cast<std::size_t>(pos)]
              .correlation[static_cast<std::size_t>(v)]);
    }
  }
}

// The engine's core promise: the merged Bernstein correlation is a pure
// function of (config, shard_size); the worker count (1, 2 or 8) changes
// wall-clock only.  Integer-cycle sums make the merge exact, so we can
// demand full bit-identity, serialized JSON included.
TEST(ShardedCampaignTest, MergedResultBitIdenticalAcrossWorkerCounts) {
  ShardedConfig config;
  config.base.samples = 3000;
  config.base.warmup = 64;
  config.shard_size = 1000;

  std::vector<std::string> dumps;
  std::vector<double> correlations;
  for (const unsigned workers : {1u, 2u, 8u}) {
    config.workers = workers;
    // kMbptaCache: the shared-layout setup, where any worker-dependent or
    // shard-dependent seeding mistake shows up as diverging profiles.
    const ShardedCampaignResult r =
        run_sharded_bernstein(core::SetupKind::kMbptaCache, config);
    EXPECT_EQ(r.shard_count, 3u);
    EXPECT_EQ(r.victim.profile.samples(), 3000u);
    EXPECT_EQ(r.attacker.profile.samples(), 3000u);

    Json doc = Json::object();
    Json corr = Json::array();
    for (int pos = 0; pos < 16; ++pos) {
      const auto& byte = r.attack.bytes[static_cast<std::size_t>(pos)];
      for (int v = 0; v < 256; ++v) {
        corr.push(byte.correlation[static_cast<std::size_t>(v)]);
      }
    }
    doc.set("victim_mean", r.victim.profile.global_mean())
        .set("victim_time_mean", r.victim.time_stats.mean())
        .set("victim_time_var", r.victim.time_stats.variance())
        .set("bits", r.attack.bits_determined())
        .set("correlations", std::move(corr));
    dumps.push_back(doc.dump());
    correlations.push_back(r.attack.bytes[0].correlation[0]);
  }
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_EQ(dumps[0], dumps[1]) << "1 vs 2 workers";
  EXPECT_EQ(dumps[0], dumps[2]) << "1 vs 8 workers";
  EXPECT_EQ(correlations[0], correlations[1]);
  EXPECT_EQ(correlations[0], correlations[2]);
}

TEST(ShardedCampaignTest, VictimSideMergeCountsAllSamples) {
  ShardedConfig config;
  config.base.samples = 2200;
  config.base.warmup = 32;
  config.shard_size = 1000;
  config.workers = 2;
  const crypto::Key key{};
  const MergedSide side =
      run_sharded_victim(core::SetupKind::kTsCache, config, 1, key);
  EXPECT_EQ(side.profile.samples(), 2200u);
  EXPECT_EQ(side.time_stats.count(), 2200u);
  EXPECT_GT(side.time_stats.mean(), 0.0);
  EXPECT_LE(side.time_stats.min(), side.time_stats.max());
}

TEST(ExperimentRegistryTest, KnownNamesResolve) {
  EXPECT_NE(find_experiment("fig1"), nullptr);
  EXPECT_NE(find_experiment("fig5"), nullptr);
  EXPECT_NE(find_experiment("ablation_seedpolicy"), nullptr);
  EXPECT_EQ(find_experiment("nope"), nullptr);
  EXPECT_GE(all_experiments().size(), 11u);
}

TEST(RunOptionsTest, SampleResolutionPrecedence) {
  RunOptions options;
  options.samples = 123;
  EXPECT_EQ(options.resolve_samples(1000), 123u);
  options.samples = 0;
  options.fast = true;
  // TSC_SAMPLES may be set in the environment of a bench run, but tests run
  // without it; fast mode divides the standard scale by 8.
  if (std::getenv("TSC_SAMPLES") == nullptr) {
    EXPECT_EQ(options.resolve_samples(1000), 125u);
  }
}

TEST(JsonTest, CompactSerializationShapes) {
  Json doc = Json::object();
  doc.set("int", 42)
      .set("neg", -7)
      .set("truth", true)
      .set("name", "tsc\"quote")
      .set("null", Json());
  Json arr = Json::array();
  arr.push(1).push(2.5).push("x");
  doc.set("arr", std::move(arr));
  EXPECT_EQ(doc.dump(),
            "{\"int\":42,\"neg\":-7,\"truth\":true,\"name\":\"tsc\\\"quote\","
            "\"null\":null,\"arr\":[1,2.5,\"x\"]}");
}

TEST(JsonTest, LargeUnsignedValuesStayUnsigned) {
  // Seeds are full-range uint64; they must never serialize as negatives.
  Json doc = Json::object();
  doc.set("seed", std::uint64_t{18'446'744'073'709'551'615ULL})
      .set("cycles", std::uint64_t{1} << 63);
  EXPECT_EQ(doc.dump(),
            "{\"seed\":18446744073709551615,\"cycles\":9223372036854775808}");
}

TEST(JsonTest, DoubleRoundTripIsBitExact) {
  const double values[] = {0.1, 1.0 / 3.0, 123456789.123456789, -0.0, 1e-300};
  for (const double v : values) {
    Json j(v);
    const std::string s = j.dump();
    EXPECT_EQ(std::stod(s), v) << s;
  }
  // Non-finite values serialize as null (JSON has no NaN).
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(JsonTest, PrettyPrintIndents) {
  Json doc = Json::object();
  doc.set("a", 1);
  EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1\n}\n");
}

}  // namespace
}  // namespace tsc::runner
