// Tests for the memory hierarchy and machine model (sim/).
#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.h"

namespace tsc::sim {
namespace {

constexpr ProcId kP1{1};

std::shared_ptr<rng::Rng> test_rng(std::uint64_t seed = 11) {
  return std::make_shared<rng::XorShift64Star>(seed);
}

HierarchyConfig small_config(bool with_l2 = true) {
  HierarchyConfig cfg;
  cfg.l1i.config.geometry = cache::Geometry(1024, 2, 32);  // 16 sets
  cfg.l1d.config.geometry = cache::Geometry(1024, 2, 32);
  if (with_l2) {
    cache::CacheSpec l2;
    l2.config.geometry = cache::Geometry(8192, 4, 32);
    cfg.l2 = l2;
  } else {
    cfg.l2.reset();
  }
  return cfg;
}

TEST(HierarchyTest, MissLatencyAccumulatesThroughLevels) {
  Hierarchy h(small_config(), test_rng());
  const LatencyConfig& lat = h.latency();
  // Cold: L1 miss + L2 miss -> full memory latency.
  const HierarchyResult cold = h.access(Port::kData, kP1, 0x1000, false);
  EXPECT_FALSE(cold.l1_hit);
  EXPECT_FALSE(cold.l2_hit);
  EXPECT_EQ(cold.latency, lat.l1_hit + lat.l2_hit + lat.memory);
  // Warm: L1 hit.
  const HierarchyResult warm = h.access(Port::kData, kP1, 0x1000, false);
  EXPECT_TRUE(warm.l1_hit);
  EXPECT_EQ(warm.latency, lat.l1_hit);
}

TEST(HierarchyTest, L2CatchesL1Evictions) {
  Hierarchy h(small_config(), test_rng());
  // Two lines conflicting in the 2-way L1 set 0, plus a third: L1 evicts,
  // but L2 (larger) still holds the line.
  const Addr a = 0x0000;
  const Addr b = 0x0200;  // 16 sets * 32B = 512B stride -> same L1 set
  const Addr c = 0x0400;
  (void)h.access(Port::kData, kP1, a, false);
  (void)h.access(Port::kData, kP1, b, false);
  (void)h.access(Port::kData, kP1, c, false);  // evicts a from L1
  const HierarchyResult r = h.access(Port::kData, kP1, a, false);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.l2_hit) << "line must still be in L2";
  EXPECT_EQ(r.latency, h.latency().l1_hit + h.latency().l2_hit);
}

TEST(HierarchyTest, NoL2GoesStraightToMemory) {
  Hierarchy h(small_config(false), test_rng());
  EXPECT_FALSE(h.has_l2());
  const HierarchyResult cold = h.access(Port::kData, kP1, 0x40, false);
  EXPECT_EQ(cold.latency, h.latency().l1_hit + h.latency().memory);
}

TEST(HierarchyTest, InstructionAndDataCachesAreSplit) {
  Hierarchy h(small_config(), test_rng());
  (void)h.access(Port::kInstruction, kP1, 0x40, false);
  // The same address through the data port must not hit in L1D.
  const HierarchyResult r = h.access(Port::kData, kP1, 0x40, false);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.l2_hit) << "unified L2 serves both ports";
}

TEST(HierarchyTest, FlushAllReportsLineCount) {
  Hierarchy h(small_config(), test_rng());
  (void)h.access(Port::kData, kP1, 0x40, false);
  (void)h.access(Port::kInstruction, kP1, 0x80, false);
  // 2 L1 lines + 2 L2 lines.
  EXPECT_EQ(h.flush_all(), 4u);
  EXPECT_FALSE(h.access(Port::kData, kP1, 0x40, false).l1_hit);
}

TEST(HierarchyTest, PerLevelSeedsAreIndependent) {
  HierarchyConfig cfg = small_config();
  cfg.l1d.mapper = cache::MapperKind::kRandomModulo;
  cfg.l2->mapper = cache::MapperKind::kHashRp;
  Hierarchy h(cfg, test_rng());
  h.set_seed(kP1, Seed{42});
  const Seed l1d_seed = h.l1d().seed(kP1);
  const Seed l2_seed = h.l2().seed(kP1);
  EXPECT_NE(l1d_seed, l2_seed)
      << "levels must not share the raw master seed";
}

TEST(MachineTest, SingleInstructionCosts) {
  Machine m(small_config(), test_rng());
  const LatencyConfig& lat = m.latency();
  // Cold fetch: 1 issue cycle + full miss stall.
  m.instr(0x100);
  EXPECT_EQ(m.now(), 1 + lat.l2_hit + lat.memory);
  // Warm fetch: exactly one cycle.
  const Cycles before = m.now();
  m.instr(0x100);
  EXPECT_EQ(m.now() - before, 1u);
}

TEST(MachineTest, LoadAddsDataLatency) {
  Machine m(small_config(), test_rng());
  m.instr(0x100);  // warm the I-line
  const LatencyConfig& lat = m.latency();
  const Cycles before = m.now();
  m.load(0x100, 0x2000);  // warm fetch, cold data
  EXPECT_EQ(m.now() - before, 1 + lat.l2_hit + lat.memory);
  const Cycles before2 = m.now();
  m.load(0x100, 0x2000);  // all warm: 1 cycle
  EXPECT_EQ(m.now() - before2, 1u);
  EXPECT_EQ(m.stats().loads, 2u);
}

TEST(MachineTest, TakenBranchPaysPenalty) {
  Machine m(small_config(), test_rng());
  m.instr(0x100);
  const Cycles before = m.now();
  m.branch(0x100, false);
  const Cycles not_taken = m.now() - before;
  m.branch(0x100, true);
  const Cycles taken = m.now() - before - not_taken;
  EXPECT_EQ(taken - not_taken, m.latency().branch_penalty);
  EXPECT_EQ(m.stats().branches, 2u);
  EXPECT_EQ(m.stats().taken_branches, 1u);
}

TEST(MachineTest, InstrBlockFetchesSequential) {
  Machine m(small_config(), test_rng());
  m.instr_block(0x200, 8);  // 8 instrs, 4B each = one 32B line
  EXPECT_EQ(m.stats().instructions, 8u);
  // One cold fetch miss + 7 warm fetches.
  const LatencyConfig& lat = m.latency();
  EXPECT_EQ(m.now(), 8 + lat.l2_hit + lat.memory);
}

TEST(MachineTest, SeedChangeDrainsAndCosts) {
  Machine m(small_config(), test_rng());
  const Cycles before = m.now();
  m.set_seed(kP1, Seed{7});
  const LatencyConfig& lat = m.latency();
  // drain + 3 levels of seed-register updates.
  EXPECT_EQ(m.now() - before, lat.drain_cost() + 3 * lat.seed_update);
  EXPECT_EQ(m.stats().seed_changes, 1u);
  EXPECT_EQ(m.stats().drains, 1u);
}

TEST(MachineTest, FlushCostsPerLine) {
  Machine m(small_config(), test_rng());
  m.load(0x100, 0x2000);  // 2 L1 lines (I+D) + 2 L2 lines
  const Cycles before = m.now();
  m.flush_caches();
  // Base issue cost + per-invalidated-line sweep cost; the base is paid
  // even by an empty flush (tests/flush_test.cc pins that regression).
  EXPECT_EQ(m.now() - before,
            m.latency().flush_base + 4 * m.latency().flush_per_line);
  EXPECT_EQ(m.stats().flushes, 1u);
}

TEST(MachineTest, ProcessSelectionTagsOwnership) {
  Machine m(small_config(), test_rng());
  m.set_process(ProcId{5});
  EXPECT_EQ(m.process(), ProcId{5});
  m.load(0x100, 0x2000);
  EXPECT_TRUE(m.hierarchy().l1d().contains(ProcId{5}, 0x2000));
}

TEST(MachineTest, AdvanceMovesTimeWithoutEvents) {
  Machine m(small_config(), test_rng());
  m.advance(100);
  EXPECT_EQ(m.now(), 100u);
  EXPECT_EQ(m.stats().instructions, 0u);
}

TEST(Arm920tConfig, MatchesPaperPlatform) {
  const HierarchyConfig cfg = arm920t_config(cache::MapperKind::kRandomModulo,
                                             cache::MapperKind::kHashRp,
                                             cache::ReplacementKind::kRandom);
  EXPECT_EQ(cfg.l1i.config.geometry.size_bytes(), 16u * 1024u);
  EXPECT_EQ(cfg.l1i.config.geometry.sets(), 128u);
  EXPECT_EQ(cfg.l1d.config.geometry.ways(), 4u);
  ASSERT_TRUE(cfg.l2.has_value());
  EXPECT_EQ(cfg.l2->config.geometry.size_bytes(), 256u * 1024u);
  EXPECT_EQ(cfg.l2->config.geometry.sets(), 2048u);
  EXPECT_EQ(cfg.l1i.mapper, cache::MapperKind::kRandomModulo);
  EXPECT_EQ(cfg.l2->mapper, cache::MapperKind::kHashRp);
}

}  // namespace
}  // namespace tsc::sim
