// Tests for the statistics library: descriptive stats, special functions,
// hypothesis tests (Ljung-Box, KS, chi-square) and correlations.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/rng.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/mi.h"
#include "stats/special.h"
#include "stats/tests.h"

namespace tsc::stats {
namespace {

TEST(Descriptive, MeanVarianceKnownValues) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // unbiased: SS=32, n-1=7
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(min(xs), 2.0);
  EXPECT_DOUBLE_EQ(max(xs), 9.0);
}

TEST(Descriptive, QuantileInterpolation) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.3), 7.0);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Descriptive, AutocorrelationOfAlternatingSeries) {
  // x = +1,-1,+1,-1...: lag-1 autocorrelation tends to -1.
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 2), 1.0, 0.02);
}

TEST(Descriptive, AutocorrelationOfConstantSeriesIsZero) {
  const std::vector<double> xs(100, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
}

TEST(Descriptive, SummaryFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_GT(s.p99, s.p75);
  EXPECT_GT(s.p75, s.p25);
}

// --- special functions -----------------------------------------------------

TEST(Special, GammaPAgainstKnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(gamma_p(1.0, 5.0), 1.0 - std::exp(-5.0), 1e-10);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(gamma_p(0.5, 0.25), std::erf(0.5), 1e-10);
  EXPECT_NEAR(gamma_p(0.5, 4.0), std::erf(2.0), 1e-10);
  // Complement.
  EXPECT_NEAR(gamma_p(3.0, 2.0) + gamma_q(3.0, 2.0), 1.0, 1e-12);
}

TEST(Special, Chi2CdfKnownValues) {
  // k=2: CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(chi2_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  // Median of chi2(1) is ~0.4549.
  EXPECT_NEAR(chi2_cdf(0.4549, 1.0), 0.5, 1e-3);
  // 95th percentile of chi2(20) is 31.410 (the Ljung-Box critical value the
  // paper's alpha = 0.05, 20-lag test uses).
  EXPECT_NEAR(chi2_cdf(31.410, 20.0), 0.95, 1e-3);
  EXPECT_NEAR(chi2_sf(31.410, 20.0), 0.05, 1e-3);
}

TEST(Special, KolmogorovQKnownValues) {
  // Q(0) = 1, decreasing, known points from tables.
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(0.5), 0.9639, 2e-3);
  EXPECT_NEAR(kolmogorov_q(1.0), 0.2700, 2e-3);
  EXPECT_NEAR(kolmogorov_q(1.36), 0.0505, 2e-3);  // the 5% critical point
  EXPECT_LT(kolmogorov_q(2.5), 1e-4);
}

TEST(Special, NormalCdf) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(normal_cdf(-1.959964), 0.025, 1e-5);
}

// --- hypothesis tests --------------------------------------------------------

TEST(LjungBox, WhiteNoisePasses) {
  rng::Pcg32 g(11);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(g.next_double());
  const TestResult r = ljung_box(xs, 20);
  EXPECT_TRUE(r.passed(0.05)) << "Q=" << r.statistic << " p=" << r.p_value;
  EXPECT_EQ(r.dof, 20u);
}

TEST(LjungBox, Ar1ProcessFails) {
  // x_t = 0.6 x_{t-1} + e_t is strongly autocorrelated.
  rng::Pcg32 g(12);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 2000; ++i) {
    xs.push_back(0.6 * xs.back() + (g.next_double() - 0.5));
  }
  const TestResult r = ljung_box(xs, 20);
  EXPECT_FALSE(r.passed(0.05)) << "an AR(1) series must fail independence";
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTwoSample, SameDistributionPasses) {
  rng::Pcg32 a(21);
  rng::Pcg32 b(22);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 1500; ++i) {
    xs.push_back(a.next_double());
    ys.push_back(b.next_double());
  }
  EXPECT_TRUE(ks_two_sample(xs, ys).passed(0.05));
}

TEST(KsTwoSample, ShiftedDistributionFails) {
  rng::Pcg32 a(23);
  rng::Pcg32 b(24);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 1500; ++i) {
    xs.push_back(a.next_double());
    ys.push_back(b.next_double() + 0.15);
  }
  const TestResult r = ks_two_sample(xs, ys);
  EXPECT_FALSE(r.passed(0.05));
  EXPECT_GT(r.statistic, 0.1);
}

TEST(KsTwoSample, IdenticalSamplesStatZero) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const TestResult r = ks_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTwoSample, ContinuousSamplesAreNotFlaggedForTies) {
  rng::Pcg32 a(31);
  rng::Pcg32 b(32);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back(a.next_double());
    ys.push_back(b.next_double());
  }
  const TestResult r = ks_two_sample(xs, ys);
  EXPECT_FALSE(r.ties_suspect);
  EXPECT_EQ(r.distinct_values, 800u);
}

TEST(KsTwoSample, QuantizedCycleCountsAreFlaggedAsTieSuspect) {
  // Integer-quantized "cycle counts" drawn from a handful of levels: the
  // continuous-case asymptotic p-value is not calibrated here (the paper's
  // gate would over-trust a PASS), and the result must say so.
  rng::Pcg32 a(33);
  rng::Pcg32 b(34);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(1000.0 + 10.0 * static_cast<double>(a.next_below(6)));
    ys.push_back(1000.0 + 10.0 * static_cast<double>(b.next_below(6)));
  }
  const TestResult r = ks_two_sample(xs, ys);
  EXPECT_TRUE(r.ties_suspect);
  EXPECT_LE(r.distinct_values, 6u);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(KsTwoSample, ModerateQuantizationStillFlagsHeavyTies) {
  // ~30 distinct values over 800 pooled samples: mean multiplicity > 10,
  // the flag's second trigger.
  rng::Pcg32 a(35);
  rng::Pcg32 b(36);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back(static_cast<double>(a.next_below(30)));
    ys.push_back(static_cast<double>(b.next_below(30)));
  }
  const TestResult r = ks_two_sample(xs, ys);
  EXPECT_TRUE(r.ties_suspect);
}

TEST(TestsValidation, RejectBadInputsLoudly) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> empty;
  EXPECT_THROW((void)ks_two_sample(empty, xs), std::invalid_argument);
  EXPECT_THROW((void)ks_two_sample(xs, empty), std::invalid_argument);
  EXPECT_THROW((void)ljung_box(xs, 20), std::invalid_argument);
  const std::vector<std::size_t> one_bin{10};
  EXPECT_THROW((void)chi2_uniform(one_bin), std::invalid_argument);
  const std::vector<std::size_t> zeros{0, 0, 0};
  EXPECT_THROW((void)chi2_uniform(zeros), std::invalid_argument);
  EXPECT_THROW((void)iid_check(xs, 20), std::invalid_argument);
}

TEST(Chi2Uniform, UniformCountsPass) {
  const std::vector<std::size_t> counts(16, 1000);
  EXPECT_TRUE(chi2_uniform(counts).passed(0.05));
}

TEST(Chi2Uniform, SkewedCountsFail) {
  std::vector<std::size_t> counts(16, 1000);
  counts[3] = 2000;
  EXPECT_FALSE(chi2_uniform(counts).passed(0.05));
}

TEST(IidCheck, UniformNoisePassesBothTests) {
  rng::Pcg32 g(33);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(g.next_double());
  const IidVerdict v = iid_check(xs);
  EXPECT_TRUE(v.independence.passed(0.05));
  EXPECT_TRUE(v.identical.passed(0.05));
  EXPECT_TRUE(v.passed());
}

TEST(IidCheck, TrendingSeriesFailsIdenticalDistribution) {
  // A drifting mean: first half differs from second half.
  rng::Pcg32 g(34);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(g.next_double() + (i < 500 ? 0.0 : 0.5));
  }
  const IidVerdict v = iid_check(xs);
  EXPECT_FALSE(v.passed());
}

// --- correlations ------------------------------------------------------------

TEST(Correlation, PerfectLinear) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, PerfectAntiLinear) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
  EXPECT_NEAR(spearman(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  rng::Pcg32 a(41);
  rng::Pcg32 b(42);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(a.next_double());
    ys.push_back(b.next_double());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
  EXPECT_NEAR(spearman(xs, ys), 0.0, 0.05);
}

TEST(Correlation, ConstantInputGivesZero) {
  const std::vector<double> xs{1, 1, 1, 1};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Correlation, SpearmanRobustToMonotoneTransform) {
  // Pearson degrades under x^3; Spearman stays exactly 1.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(static_cast<double>(i) * i * i);
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> xs{1, 2, 2, 3};
  const std::vector<double> ys{1, 2, 2, 3};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

// --- histogram ----------------------------------------------------------------

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(50.0);   // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(HistogramTest, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}


TEST(DescriptiveAccumulator, MatchesWholeSampleFunctions) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  Descriptive acc;
  for (const double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_DOUBLE_EQ(acc.mean(), mean(xs));
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), min(xs));
  EXPECT_DOUBLE_EQ(acc.max(), max(xs));
}

TEST(DescriptiveAccumulator, MergeMatchesSequentialBitExactly) {
  // Integer-valued samples (like cycle counts): moment sums are exact, so
  // split-then-merge must equal straight-through accumulation bitwise.
  rng::XorShift64Star g(4242);
  Descriptive whole;
  Descriptive parts[4];
  for (int i = 0; i < 4000; ++i) {
    const auto x = static_cast<double>(500 + g.next_below(2000));
    whole.add(x);
    parts[i % 4].add(x);
  }
  Descriptive merged;
  for (const Descriptive& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());
  EXPECT_EQ(merged.mean(), whole.mean());
  EXPECT_EQ(merged.variance(), whole.variance());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

TEST(DescriptiveAccumulator, MergeWithEmptySides) {
  Descriptive a;
  Descriptive b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);            // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  a.merge(Descriptive{});  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(DescriptiveAccumulator, VarianceIsTotalBelowTwoSamples) {
  // Single-timing campaigns (e.g. --samples 1 smoke runs) reach the JSON
  // reporters; variance must stay defined, not assert or divide by zero.
  Descriptive acc;
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(123.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(DescriptiveAccumulator, NearConstantVarianceClampedAtZero) {
  Descriptive acc;
  for (int i = 0; i < 100; ++i) acc.add(1e9 + 0.0);
  EXPECT_GE(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

// --- binned mutual information ----------------------------------------------

TEST(JointHistogramTest, DeterministicChannelYieldsFullEntropy) {
  // y = x: MI equals the X entropy, here log2(8) = 3 bits exactly.
  JointHistogram h(8, 8);
  for (std::size_t x = 0; x < 8; ++x) h.add(x, x, 10'000);
  EXPECT_NEAR(h.mi_bits(), 3.0, 1e-12);
  EXPECT_NEAR(h.x_entropy_bits(), 3.0, 1e-12);
  // Miller-Madow subtracts (8-1)(8-1)/(2 N ln 2) = 0.0004 bits here.
  EXPECT_NEAR(h.mi_bits_corrected(), 3.0, 0.001);
}

TEST(JointHistogramTest, IndependentChannelHasNearZeroCorrectedMi) {
  JointHistogram h(16, 8);
  rng::XorShift64Star g(41);
  for (int i = 0; i < 40'000; ++i) {
    h.add(g.next_below(16), g.next_below(8));
  }
  // Raw plug-in MI is positive by construction (finite-sample bias ~
  // (15*7)/(2 N ln 2) = 0.0019 bits); the Miller-Madow correction must
  // cancel it to noise level.
  EXPECT_GT(h.mi_bits(), 0.0);
  EXPECT_LT(h.mi_bits(), 0.01);
  EXPECT_LT(h.mi_bits_corrected(), 0.003);
}

TEST(JointHistogramTest, MiNeverExceedsSecretEntropy) {
  JointHistogram h(4, 32);
  rng::XorShift64Star g(43);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = g.next_below(4);
    h.add(x, (x * 8 + g.next_below(8)));  // noisy but x-revealing channel
  }
  EXPECT_LE(h.mi_bits(), h.x_entropy_bits() + 1e-12);
  EXPECT_GT(h.mi_bits_corrected(), 1.5) << "channel clearly reveals x";
}

TEST(JointHistogramTest, MergeMatchesSequentialCountsExactly) {
  JointHistogram whole(6, 5);
  JointHistogram a(6, 5);
  JointHistogram b(6, 5);
  rng::XorShift64Star g(44);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t x = g.next_below(6);
    const std::uint64_t y = g.next_below(5);
    whole.add(x, y);
    (i % 3 == 0 ? a : b).add(x, y);
  }
  a.merge(b);
  EXPECT_EQ(a.samples(), whole.samples());
  for (std::size_t x = 0; x < 6; ++x) {
    for (std::size_t y = 0; y < 5; ++y) {
      ASSERT_EQ(a.cell(x, y), whole.cell(x, y));
    }
  }
  EXPECT_EQ(a.mi_bits(), whole.mi_bits()) << "same counts, same estimate";
}

TEST(JointHistogramTest, EmptyHistogramIsAllZeros) {
  const JointHistogram h(3, 3);
  EXPECT_EQ(h.samples(), 0u);
  EXPECT_DOUBLE_EQ(h.mi_bits(), 0.0);
  EXPECT_DOUBLE_EQ(h.mi_bits_corrected(), 0.0);
  EXPECT_DOUBLE_EQ(h.x_entropy_bits(), 0.0);
}

}  // namespace
}  // namespace tsc::stats
