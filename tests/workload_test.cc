// Tests for the synthetic workload generators (sim/workload.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "sim/workload.h"

namespace tsc::sim {
namespace {

constexpr ProcId kP1{1};

Machine make_machine(std::uint64_t seed = 3) {
  HierarchyConfig cfg;
  cfg.l1i.config.geometry = cache::Geometry(4096, 2, 32);
  cfg.l1d.config.geometry = cache::Geometry(4096, 2, 32);
  cache::CacheSpec l2;
  l2.config.geometry = cache::Geometry(64 * 1024, 4, 32);
  cfg.l2 = l2;
  return Machine(cfg, std::make_shared<rng::XorShift64Star>(seed));
}

TEST(WorkloadGen, SequentialCoversDistinctLines) {
  const Trace t = make_sequential(0x1000, 100, 32);
  ASSERT_EQ(t.addresses.size(), 100u);
  std::set<Addr> lines(t.addresses.begin(), t.addresses.end());
  EXPECT_EQ(lines.size(), 100u);
  EXPECT_EQ(t.addresses.front(), 0x1000u);
  EXPECT_EQ(t.addresses.back(), 0x1000u + 99 * 32);
}

TEST(WorkloadGen, StridedWrapsAtWindow) {
  const Trace t = make_strided(0x2000, 10, 256, 1024);
  for (const Addr a : t.addresses) {
    EXPECT_GE(a, 0x2000u);
    EXPECT_LT(a, 0x2000u + 1024u);
  }
  EXPECT_EQ(t.addresses[0], 0x2000u);
  EXPECT_EQ(t.addresses[4], 0x2000u) << "stride 256 wraps a 1KB window in 4";
}

TEST(WorkloadGen, UniformIsDeterministicPerSeed) {
  const Trace a = make_uniform(0, 500, 4096, 7);
  const Trace b = make_uniform(0, 500, 4096, 7);
  const Trace c = make_uniform(0, 500, 4096, 8);
  EXPECT_EQ(a.addresses, b.addresses);
  EXPECT_NE(a.addresses, c.addresses);
}

TEST(WorkloadGen, ZipfSkewsTowardHotLines) {
  const Trace t = make_zipf(0, 20000, 64, 1.1, 5);
  std::map<Addr, int> counts;
  for (const Addr a : t.addresses) ++counts[a];
  // Rank-1 line must be touched far more often than a mid-rank line.
  EXPECT_GT(counts[0], 10 * counts[32 * 31]);
  // But the tail must still be present.
  EXPECT_GT(counts.size(), 48u);
}

TEST(WorkloadGen, ZipfAlphaControlsSkew) {
  const Trace mild = make_zipf(0, 20000, 64, 0.5, 5);
  const Trace steep = make_zipf(0, 20000, 64, 1.5, 5);
  const auto hot_share = [](const Trace& t) {
    std::size_t hot = 0;
    for (const Addr a : t.addresses) hot += a == 0 ? 1 : 0;
    return static_cast<double>(hot) / t.addresses.size();
  };
  EXPECT_GT(hot_share(steep), 2 * hot_share(mild));
}

TEST(WorkloadGen, PointerChaseVisitsEveryLineBeforeRepeating) {
  const std::uint32_t lines = 50;
  const Trace t = make_pointer_chase(0, lines, lines, 11);
  std::set<Addr> seen(t.addresses.begin(), t.addresses.end());
  EXPECT_EQ(seen.size(), lines)
      << "Sattolo single-cycle permutation must cover all lines";
}

TEST(RunTrace, SequentialStreamingMissesOncePerLine) {
  auto m = make_machine();
  const Trace t = make_sequential(0x10000, 64, 32);
  const TraceResult r = run_trace(m, kP1, t);
  EXPECT_EQ(r.accesses, 64u);
  EXPECT_NEAR(r.l1d_miss_rate, 1.0, 1e-9) << "every line is new";
  // Replay: the 2KB footprint fits the 4KB L1.
  const TraceResult warm = run_trace(m, kP1, t);
  EXPECT_NEAR(warm.l1d_miss_rate, 0.0, 1e-9);
  EXPECT_LT(warm.cycles, r.cycles);
}

TEST(RunTrace, CapacityThrashRaisesMissRate) {
  auto m = make_machine();
  // 16KB uniform window against a 4KB L1: mostly misses even warm.
  const Trace t = make_uniform(0x20000, 4000, 16 * 1024, 13);
  (void)run_trace(m, kP1, t);
  const TraceResult warm = run_trace(m, kP1, t);
  EXPECT_GT(warm.l1d_miss_rate, 0.5);
  EXPECT_LT(warm.l2_miss_rate, 0.2) << "the 64KB L2 absorbs the window";
}

TEST(RunTrace, ZipfHotSetMostlyHitsAfterWarmup) {
  auto m = make_machine();
  const Trace t = make_zipf(0x30000, 8000, 512, 1.2, 17);
  (void)run_trace(m, kP1, t);
  const TraceResult warm = run_trace(m, kP1, t);
  EXPECT_LT(warm.l1d_miss_rate, 0.45)
      << "skewed reuse must be exploitable by the cache";
}

TEST(RunTrace, ResetsStatsPerRun) {
  auto m = make_machine();
  const Trace t = make_sequential(0x40000, 32, 32);
  (void)run_trace(m, kP1, t);
  const TraceResult r2 = run_trace(m, kP1, t);
  EXPECT_EQ(r2.accesses, 32u);
  EXPECT_LE(m.hierarchy().l1d().stats().accesses, 2 * 32u)
      << "stats must not accumulate across run_trace calls";
}

}  // namespace
}  // namespace tsc::sim
